// Package memo is a content-addressed result cache: a byte-budgeted
// in-memory LRU with singleflight deduplication and an optional
// on-disk store, keyed by internal/canon fingerprints. It is the
// substrate that turns this repository's determinism contract into
// speed: every engine result is a pure function of fingerprinted
// inputs, so equal keys mean a recomputation can be skipped (warm
// runs) or shared (concurrent identical requests compute once).
//
// Three behaviours matter to correctness:
//
//   - Singleflight: concurrent Do calls with the same key run one
//     compute; the rest wait and share the result. Under the parallel
//     harness the four deg-* experiments race to derive the same
//     degraded machine — with singleflight the derivation happens once.
//
//   - Non-storable results never enter the cache and never satisfy
//     waiters: a compute that reports Store=false (a FAILED report, a
//     watchdog trip, a cancellation) returns its value to its own
//     caller only, and every waiter retries with its own compute. A
//     cancelled run therefore cannot poison the group — the other
//     requests redo the work under their own budgets.
//
//   - A compute that panics is detached before the panic propagates:
//     the inflight slot is removed and waiters retry. Panic isolation
//     stays where it belongs (the harness's safeRun wrapper); the
//     cache merely guarantees no goroutine blocks forever on a dead
//     leader.
//
// All methods are safe for concurrent use. Instrumentation lands in an
// obs scope when one is provided: hits, misses, stores, evictions,
// singleflight waits, current bytes/entries, and disk read/write
// timings for the on-disk store.
package memo

import (
	"sync"

	"repro/internal/canon"
	"repro/internal/obs"
)

// Result is what a compute callback hands back to Do.
type Result struct {
	// V is the computed value shared with waiters and stored in the
	// LRU when Store is true.
	V any
	// Cost is the value's size in bytes charged against the cache
	// budget; non-positive costs are charged as one byte.
	Cost int64
	// Store marks the result cacheable. FAILED, tripped or cancelled
	// computations must set it false: the value is returned to the
	// caller but never cached, and waiting duplicates recompute.
	Store bool
}

// Cache is a byte-budgeted LRU keyed by canonical fingerprints. Use
// New; the zero value is not ready.
type Cache struct {
	name     string
	maxBytes int64
	scope    *obs.Registry // nil = uninstrumented (obs methods no-op on nil)
	disk     *diskStore    // nil = memory only

	mu       sync.Mutex
	entries  map[canon.Fingerprint]*entry
	inflight map[canon.Fingerprint]*flight
	bytes    int64
	// head is most recently used, tail least; sentinel-free list.
	head, tail *entry
}

type entry struct {
	key        canon.Fingerprint
	val        any
	cost       int64
	prev, next *entry
}

// flight is one in-progress compute plus everyone waiting on it.
type flight struct {
	done chan struct{} // closed when the leader finishes or panics
	val  any
	err  error
	// ok marks a completed, storable result waiters may consume;
	// false after a panic or a non-storable result, sending waiters
	// back to compute for themselves.
	ok bool
}

// New builds a cache. maxBytes bounds the in-memory LRU (<= 0 means
// unbounded); reg, when non-nil, receives counters under a
// "memo/<name>" scope.
func New(name string, maxBytes int64, reg *obs.Registry) *Cache {
	var scope *obs.Registry
	if reg != nil {
		scope = reg.Child("memo").Child(name)
	}
	return &Cache{
		name:     name,
		maxBytes: maxBytes,
		scope:    scope,
		entries:  map[canon.Fingerprint]*entry{},
		inflight: map[canon.Fingerprint]*flight{},
	}
}

// Name returns the cache's instrumentation name.
func (c *Cache) Name() string { return c.name }

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the resident cost total.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Do returns the cached value for key, or runs compute — once across
// all concurrent callers of the same key — and caches its result when
// Result.Store is true. The second return is true on a cache hit
// (including a hit satisfied by another caller's in-flight compute).
// Errors are returned to every caller of the generation that computed
// them; they are never cached.
func (c *Cache) Do(key canon.Fingerprint, compute func() (Result, error)) (any, bool, error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.touch(e)
			c.mu.Unlock()
			c.scope.Counter("hits").Inc()
			return e.val, true, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			c.scope.Counter("singleflight_waits").Inc()
			<-f.done
			if f.err != nil {
				return nil, false, f.err
			}
			if f.ok {
				return f.val, true, nil
			}
			// The leader panicked or produced a non-storable result
			// (failed / cancelled); recompute under our own flag.
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		c.scope.Counter("misses").Inc()
		return c.lead(key, f, compute)
	}
}

// lead runs one compute as the key's flight leader and publishes the
// outcome. On panic the flight is detached so waiters retry, then the
// panic continues to the caller (the harness's isolation wrapper).
func (c *Cache) lead(key canon.Fingerprint, f *flight, compute func() (Result, error)) (any, bool, error) {
	finished := false
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		if !finished {
			close(f.done) // panic path: f.ok stays false, waiters retry
		}
	}()

	res, err := compute()
	finished = true
	f.val, f.err = res.V, err
	f.ok = err == nil && res.Store
	if f.ok {
		c.insert(key, res.V, res.Cost)
	}
	close(f.done)
	return res.V, false, err
}

// insert stores a computed value and evicts from the LRU tail until
// the budget holds. A value costlier than the whole budget is not
// stored at all — evicting the entire cache to hold one entry would
// thrash.
func (c *Cache) insert(key canon.Fingerprint, val any, cost int64) {
	if cost <= 0 {
		cost = 1
	}
	if c.maxBytes > 0 && cost > c.maxBytes {
		c.scope.Counter("oversize_skips").Inc()
		return
	}
	c.mu.Lock()
	if old, ok := c.entries[key]; ok {
		// A racing leader of the same key already stored an identical
		// result (keys are content addresses); keep the resident one.
		c.touch(old)
		c.mu.Unlock()
		return
	}
	e := &entry{key: key, val: val, cost: cost}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += cost
	evicted := 0
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.tail != nil && c.tail != e {
		evicted++
		c.evict(c.tail)
	}
	bytes, entries := c.bytes, len(c.entries)
	c.mu.Unlock()
	c.scope.Counter("stores").Inc()
	c.scope.Counter("evictions").Add(uint64(evicted))
	c.scope.Gauge("bytes").Set(bytes)
	c.scope.Gauge("entries").Set(int64(entries))
}

// touch moves an entry to the front (most recently used). Callers hold
// c.mu.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict removes an entry. Callers hold c.mu.
func (c *Cache) evict(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.cost
}
