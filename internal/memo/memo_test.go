package memo

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/canon"
	"repro/internal/obs"
)

func key(b byte) canon.Fingerprint {
	var f canon.Fingerprint
	f[0] = b
	return f
}

func storable(v any, cost int64) func() (Result, error) {
	return func() (Result, error) { return Result{V: v, Cost: cost, Store: true}, nil }
}

func TestHitMiss(t *testing.T) {
	c := New("t", 0, nil)
	calls := 0
	compute := func() (Result, error) {
		calls++
		return Result{V: "v", Cost: 1, Store: true}, nil
	}
	v, hit, err := c.Do(key(1), compute)
	if err != nil || hit || v != "v" {
		t.Fatalf("first Do = (%v, %v, %v), want (v, false, nil)", v, hit, err)
	}
	v, hit, err = c.Do(key(1), compute)
	if err != nil || !hit || v != "v" {
		t.Fatalf("second Do = (%v, %v, %v), want (v, true, nil)", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New("t", 0, nil)
	boom := errors.New("boom")
	if _, _, err := c.Do(key(1), func() (Result, error) { return Result{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error result was cached (%d entries)", c.Len())
	}
	// The key is computable again after the failure.
	if v, _, err := c.Do(key(1), storable("ok", 1)); err != nil || v != "ok" {
		t.Fatalf("retry after error = (%v, %v)", v, err)
	}
}

func TestNonStorableNotCached(t *testing.T) {
	c := New("t", 0, nil)
	v, hit, err := c.Do(key(1), func() (Result, error) { return Result{V: "failed", Store: false}, nil })
	if err != nil || hit || v != "failed" {
		t.Fatalf("Do = (%v, %v, %v), want the non-storable value back", v, hit, err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("non-storable result entered the cache (%d entries, %d bytes)", c.Len(), c.Bytes())
	}
}

// TestLRUEviction fills a 10-byte budget and checks least-recently-used
// entries leave first, with a touch refreshing recency.
func TestLRUEviction(t *testing.T) {
	c := New("t", 10, nil)
	for b := byte(1); b <= 2; b++ {
		c.Do(key(b), storable(int(b), 4))
	}
	// Touch key 1 so key 2 is now least recently used.
	if _, hit, _ := c.Do(key(1), storable(0, 4)); !hit {
		t.Fatal("expected hit on key 1")
	}
	// 4+4+4 > 10: inserting key 3 must evict key 2 (LRU), not key 1.
	c.Do(key(3), storable(3, 4))
	if _, hit, _ := c.Do(key(1), storable(-1, 4)); !hit {
		t.Error("recently used key 1 was evicted")
	}
	if _, hit, _ := c.Do(key(3), storable(-1, 4)); !hit {
		t.Error("just-inserted key 3 was evicted")
	}
	recomputed := false
	c.Do(key(2), func() (Result, error) {
		recomputed = true
		return Result{V: 2, Cost: 4, Store: true}, nil
	})
	if !recomputed {
		t.Error("LRU key 2 was not evicted")
	}
	if c.Bytes() > 10 {
		t.Errorf("cache over budget: %d bytes", c.Bytes())
	}
}

func TestOversizeSkipped(t *testing.T) {
	c := New("t", 10, nil)
	c.Do(key(1), storable("small", 4))
	c.Do(key(2), storable("huge", 11))
	if c.Len() != 1 {
		t.Fatalf("oversize entry was stored (%d entries)", c.Len())
	}
	if _, hit, _ := c.Do(key(1), storable(nil, 4)); !hit {
		t.Error("storing an oversize value evicted the resident cache")
	}
}

func TestZeroCostCharged(t *testing.T) {
	c := New("t", 0, nil)
	c.Do(key(1), storable("v", 0))
	if c.Bytes() != 1 {
		t.Fatalf("zero-cost entry charged %d bytes, want 1", c.Bytes())
	}
}

// TestSingleflight races many goroutines on one cold key: exactly one
// compute must run, everyone gets its value.
func TestSingleflight(t *testing.T) {
	c := New("t", 0, nil)
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(key(1), func() (Result, error) {
				calls.Add(1)
				<-gate // hold the flight open until all callers arrived
				return Result{V: "shared", Cost: 1, Store: true}, nil
			})
			if err != nil || v != "shared" {
				errs <- errors.New("wrong value from singleflight")
			}
		}()
	}
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("compute ran %d times under singleflight, want 1", got)
	}
}

// waits reads a cache's singleflight_waits counter: tests spin on it to
// know a duplicate caller has actually parked on the flight (the
// counter increments just before parking) without resorting to sleeps.
func waits(reg *obs.Registry, name string) uint64 {
	snap := reg.Child("memo").Child(name).Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "singleflight_waits" {
			return c.Value
		}
	}
	return 0
}

// TestNonStorableDoesNotPoisonWaiters is the cancellation contract: a
// leader whose result is non-storable (FAILED report, cancelled run)
// must not hand that result to waiting duplicates — they recompute.
func TestNonStorableDoesNotPoisonWaiters(t *testing.T) {
	reg := obs.NewRegistry("test")
	c := New("t", 0, reg)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var leaderDone, waiterRan atomic.Bool

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		v, _, _ := c.Do(key(1), func() (Result, error) {
			close(leaderIn)
			<-leaderGo
			leaderDone.Store(true)
			return Result{V: "cancelled", Store: false}, nil
		})
		if v != "cancelled" {
			t.Errorf("leader got %v, want its own cancelled value", v)
		}
	}()
	<-leaderIn // the next Do is guaranteed to join as a waiter
	go func() {
		defer wg.Done()
		v, _, err := c.Do(key(1), func() (Result, error) {
			if !leaderDone.Load() {
				t.Error("waiter recomputed before the leader finished")
			}
			waiterRan.Store(true)
			return Result{V: "fresh", Cost: 1, Store: true}, nil
		})
		if err != nil || v != "fresh" {
			t.Errorf("waiter got (%v, %v), want its own fresh value", v, err)
		}
	}()
	// Release the leader only once the duplicate has parked on the
	// flight, so the test exercises the waiter path, not a cold miss.
	for waits(reg, "t") == 0 {
		runtime.Gosched()
	}
	close(leaderGo)
	wg.Wait()
	if !waiterRan.Load() {
		t.Fatal("waiter consumed the non-storable result instead of recomputing")
	}
}

// TestPanicReleasesWaiters: a panicking leader must unblock waiters
// (they retry) and let the panic propagate to its own caller.
func TestPanicReleasesWaiters(t *testing.T) {
	reg := obs.NewRegistry("test")
	c := New("t", 0, reg)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		c.Do(key(1), func() (Result, error) {
			close(leaderIn)
			<-leaderGo
			panic("leader died")
		})
	}()
	<-leaderIn
	go func() {
		defer wg.Done()
		v, _, err := c.Do(key(1), func() (Result, error) {
			return Result{V: "recovered", Cost: 1, Store: true}, nil
		})
		if err != nil || v != "recovered" {
			t.Errorf("waiter after panic got (%v, %v)", v, err)
		}
	}()
	for waits(reg, "t") == 0 {
		runtime.Gosched()
	}
	close(leaderGo)
	wg.Wait()
}

// TestCounters spot-checks the instrumentation contract.
func TestCounters(t *testing.T) {
	reg := obs.NewRegistry("test")
	c := New("reports", 8, reg)
	c.Do(key(1), storable("a", 4)) // miss + store
	c.Do(key(1), storable("a", 4)) // hit
	c.Do(key(2), storable("b", 8)) // miss + store + evict key 1
	c.Do(key(3), func() (Result, error) { return Result{V: "x", Store: false}, nil })

	snap := reg.Child("memo").Child("reports").Snapshot()
	want := map[string]uint64{"hits": 1, "misses": 3, "stores": 2, "evictions": 1}
	got := map[string]uint64{}
	for _, cnt := range snap.Counters {
		got[cnt.Name] = cnt.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("counter %s = %d, want %d", name, got[name], v)
		}
	}
}
