package memo

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/obs"
)

func computeBytes(data []byte, store bool, calls *atomic.Int64) func() ([]byte, bool, error) {
	return func() ([]byte, bool, error) {
		if calls != nil {
			calls.Add(1)
		}
		return data, store, nil
	}
}

// TestDiskRoundTrip: a second cache over the same directory — a fresh
// process in miniature — must serve the first cache's results without
// recomputing.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cold := New("t", 0, nil)
	if err := cold.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	payload := []byte(`{"report":"table3"}`)
	data, hit, err := cold.DoBytes(key(1), nil, computeBytes(payload, true, &calls))
	if err != nil || hit || !bytes.Equal(data, payload) {
		t.Fatalf("cold DoBytes = (%q, %v, %v)", data, hit, err)
	}

	// The entry landed under its full fingerprint hex, no temp litter.
	if _, err := os.Stat(filepath.Join(dir, key(1).String())); err != nil {
		t.Fatalf("no content-addressed file for key: %v", err)
	}
	glob, _ := filepath.Glob(filepath.Join(dir, "tmp-*"))
	if len(glob) != 0 {
		t.Fatalf("temp files left behind: %v", glob)
	}

	warm := New("t", 0, nil)
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	data, hit, err = warm.DoBytes(key(1), nil, computeBytes(nil, true, &calls))
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("warm DoBytes = (%q, %v, %v)", data, hit, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times across cold+warm caches, want 1", calls.Load())
	}
	// A disk-promoted entry is a memory hit afterwards.
	if _, hit, _ := warm.DoBytes(key(1), nil, computeBytes(nil, true, nil)); !hit {
		t.Error("disk-promoted entry did not become a memory hit")
	}
}

// TestDiskCorruptEntry: a failed validation deletes the entry and falls
// back to compute, so corruption cannot permanently shadow results.
func TestDiskCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := New("t", 0, nil)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key(9).String())
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	check := func(p []byte) error {
		if !bytes.HasPrefix(p, []byte("{")) {
			return errors.New("corrupt")
		}
		return nil
	}
	var calls atomic.Int64
	data, _, err := c.DoBytes(key(9), check, computeBytes([]byte("{}"), true, &calls))
	if err != nil || string(data) != "{}" || calls.Load() != 1 {
		t.Fatalf("corrupt entry did not fall through to compute: (%q, %v, %d calls)", data, err, calls.Load())
	}
	// The rewrite replaced the corrupt file with the good bytes.
	onDisk, err := os.ReadFile(path)
	if err != nil || string(onDisk) != "{}" {
		t.Fatalf("corrupt entry not replaced on disk: (%q, %v)", onDisk, err)
	}
}

// TestDiskNonStorableNotWritten: Store=false results must not persist.
func TestDiskNonStorableNotWritten(t *testing.T) {
	dir := t.TempDir()
	c := New("t", 0, nil)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.DoBytes(key(2), nil, computeBytes([]byte("failed"), false, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key(2).String())); !os.IsNotExist(err) {
		t.Fatal("non-storable result was written to disk")
	}
}

func TestSetDirRejectsEmpty(t *testing.T) {
	c := New("t", 0, nil)
	if err := c.SetDir(""); err == nil {
		t.Fatal("SetDir(\"\") succeeded")
	}
	if c.Dir() != "" {
		t.Fatal("Dir() non-empty on a memory-only cache")
	}
}

func TestSetDirCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	c := New("t", 0, nil)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if c.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", c.Dir(), dir)
	}
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		t.Fatalf("cache directory not created: %v", err)
	}
}

// TestDiskSharedDirectory: many keys, two caches, interleaved — the
// content-addressed naming keeps them from ever conflicting.
func TestDiskSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a := New("a", 0, nil)
	b := New("b", 0, nil)
	for _, c := range []*Cache{a, b} {
		if err := c.SetDir(dir); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 8; i++ {
		payload := []byte(fmt.Sprintf(`{"i":%d}`, i))
		if _, _, err := a.DoBytes(key(i), nil, computeBytes(payload, true, nil)); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 8; i++ {
		want := fmt.Sprintf(`{"i":%d}`, i)
		data, _, err := b.DoBytes(key(i), nil, func() ([]byte, bool, error) {
			return nil, false, errors.New("should have been served from disk")
		})
		if err != nil || string(data) != want {
			t.Fatalf("key %d: (%q, %v), want %q from disk", i, data, err, want)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("%d files in shared dir, want 8", len(entries))
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Errorf("temp litter: %s", e.Name())
		}
	}
}

// TestDiskWriteRetries: an injected transient write failure is retried
// on a deterministic backoff and succeeds, with the attempt accounted
// under memo/<name>/disk/{write_errors,retries}.
func TestDiskWriteRetries(t *testing.T) {
	reg := obs.NewRegistry("root")
	c := New("t", 0, reg)
	mem := iofault.NewMem()
	// Fail the first content write; the retry's write passes.
	ffs := iofault.NewFaulty(mem, iofault.Fault{Op: iofault.OpWrite, N: 0, Kind: iofault.KindErr})
	if err := c.SetDirFS("cache", ffs); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	c.disk.sleep = func(d time.Duration) { slept = append(slept, d) }

	if _, _, err := c.DoBytes(key(3), nil, computeBytes([]byte("{}"), true, nil)); err != nil {
		t.Fatal(err)
	}
	if data, err := mem.ReadFile("cache/" + key(3).String()); err != nil || string(data) != "{}" {
		t.Fatalf("entry not on disk after retry: (%q, %v)", data, err)
	}
	disk := reg.Child("memo").Child("t").Child("disk")
	if got := disk.Counter("write_errors").Load(); got != 1 {
		t.Errorf("write_errors = %d, want 1", got)
	}
	if got := disk.Counter("retries").Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if len(slept) != 1 || slept[0] != diskRetryBackoff {
		t.Errorf("backoff schedule %v, want [%v]", slept, diskRetryBackoff)
	}
}

// TestDiskWriteGivesUp: a persistently failing disk exhausts the
// attempt budget without failing the request — the cache degrades to
// memory-only for that entry.
func TestDiskWriteGivesUp(t *testing.T) {
	reg := obs.NewRegistry("root")
	c := New("t", 0, reg)
	var faults []iofault.Fault
	for i := 0; i < diskWriteAttempts; i++ {
		faults = append(faults, iofault.Fault{Op: iofault.OpWrite, N: i, Kind: iofault.KindNoSpace})
	}
	mem := iofault.NewMem()
	ffs := iofault.NewFaulty(mem, faults...)
	if err := c.SetDirFS("cache", ffs); err != nil {
		t.Fatal(err)
	}
	c.disk.sleep = func(time.Duration) {}

	data, _, err := c.DoBytes(key(4), nil, computeBytes([]byte("{}"), true, nil))
	if err != nil || string(data) != "{}" {
		t.Fatalf("request failed with the disk down: (%q, %v)", data, err)
	}
	if _, err := mem.ReadFile("cache/" + key(4).String()); err == nil {
		t.Fatal("entry written despite every attempt failing")
	}
	disk := reg.Child("memo").Child("t").Child("disk")
	if got := disk.Counter("write_errors").Load(); got != diskWriteAttempts {
		t.Errorf("write_errors = %d, want %d", got, diskWriteAttempts)
	}
	if got := disk.Counter("retries").Load(); got != diskWriteAttempts-1 {
		t.Errorf("retries = %d, want %d", got, diskWriteAttempts-1)
	}
	// The in-memory copy still serves.
	if _, hit, _ := c.DoBytes(key(4), nil, computeBytes(nil, true, nil)); !hit {
		t.Error("entry not served from memory after disk write failure")
	}
}

// TestDiskCorruptDeletedCounter pins the corrupt-entry audit trail.
func TestDiskCorruptDeletedCounter(t *testing.T) {
	reg := obs.NewRegistry("root")
	c := New("t", 0, reg)
	mem := iofault.NewMem()
	if err := c.SetDirFS("cache", mem); err != nil {
		t.Fatal(err)
	}
	f, err := mem.Create("cache/" + key(5).String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	check := func(p []byte) error {
		if !bytes.HasPrefix(p, []byte("{")) {
			return errors.New("corrupt")
		}
		return nil
	}
	if _, _, err := c.DoBytes(key(5), check, computeBytes([]byte("{}"), true, nil)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Child("memo").Child("t").Child("disk").Counter("corrupt_deleted").Load(); got != 1 {
		t.Errorf("corrupt_deleted = %d, want 1", got)
	}
}

// TestGetBytes: read-only probe hits memory, promotes disk entries, and
// never computes.
func TestGetBytes(t *testing.T) {
	mem := iofault.NewMem()
	c := New("t", 0, nil)
	if err := c.SetDirFS("cache", mem); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.GetBytes(key(6), nil); ok {
		t.Fatal("GetBytes invented an absent entry")
	}
	if _, _, err := c.DoBytes(key(6), nil, computeBytes([]byte(`{"r":1}`), true, nil)); err != nil {
		t.Fatal(err)
	}
	if data, ok := c.GetBytes(key(6), nil); !ok || string(data) != `{"r":1}` {
		t.Fatalf("memory GetBytes = (%q, %v)", data, ok)
	}

	// A fresh cache over the same store: GetBytes serves and promotes
	// the disk entry.
	warm := New("t", 0, nil)
	if err := warm.SetDirFS("cache", mem); err != nil {
		t.Fatal(err)
	}
	if data, ok := warm.GetBytes(key(6), nil); !ok || string(data) != `{"r":1}` {
		t.Fatalf("disk GetBytes = (%q, %v)", data, ok)
	}
	if warm.Len() != 1 {
		t.Errorf("GetBytes did not promote the disk entry (Len=%d)", warm.Len())
	}
	// A failing check treats the entry as absent (and deletes it).
	bad := New("t", 0, nil)
	if err := bad.SetDirFS("cache", mem); err != nil {
		t.Fatal(err)
	}
	if _, ok := bad.GetBytes(key(6), func([]byte) error { return errors.New("no") }); ok {
		t.Fatal("GetBytes served an entry its check rejected")
	}
}

// TestPeek: Peek sees memory entries, sees disk entries (without
// promoting them into memory), and stays silent for absent keys.
func TestPeek(t *testing.T) {
	dir := t.TempDir()
	c := New("t", 0, nil)
	if err := c.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if c.Peek(key(1)) {
		t.Error("Peek on an empty cache")
	}
	if _, _, err := c.DoBytes(key(1), nil, computeBytes([]byte("x"), true, nil)); err != nil {
		t.Fatal(err)
	}
	if !c.Peek(key(1)) {
		t.Error("Peek misses a resident entry")
	}

	// A fresh cache over the same directory: the entry is disk-only.
	warm := New("t", 0, nil)
	if err := warm.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if !warm.Peek(key(1)) {
		t.Error("Peek misses a disk entry")
	}
	if warm.Len() != 0 {
		t.Errorf("Peek promoted the disk entry (Len=%d)", warm.Len())
	}
	if warm.Peek(key(2)) {
		t.Error("Peek invents an absent key")
	}

	// Memory-only cache: no disk to consult.
	mem := New("m", 0, nil)
	if mem.Peek(key(1)) {
		t.Error("memory-only Peek sees another cache's disk")
	}
}
