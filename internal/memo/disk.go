package memo

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/canon"
)

// diskStore is a content-addressed directory of results: each entry is
// a file named by the full hex fingerprint, written atomically
// (temp-then-rename) so a crashed or concurrent writer can never leave
// a half-written entry under a final name. Two processes (or two
// caches) sharing a directory race only on renames of identical
// content — keys are content addresses — so the last rename winning is
// harmless.
type diskStore struct {
	dir string
}

// SetDir enables the on-disk store under dir, creating it if needed.
// Only byte-valued entries (DoBytes) touch the disk; opaque in-memory
// values (Do) stay memory-only.
func (c *Cache) SetDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("memo: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("memo: cache directory: %w", err)
	}
	c.disk = &diskStore{dir: dir}
	return nil
}

// Dir returns the on-disk store's directory ("" when memory-only).
func (c *Cache) Dir() string {
	if c.disk == nil {
		return ""
	}
	return c.disk.dir
}

// Peek reports whether a result for key is already resident — in the
// memory LRU, or (when the on-disk store is enabled) as a disk entry.
// It is purely advisory: it promotes nothing, validates nothing,
// charges no stats, and the answer can be stale by the time the caller
// acts on it (a concurrent Do may insert or evict the key at any
// moment). p8d uses it to annotate freshly admitted jobs with a
// warm/cold hint without perturbing the cache.
func (c *Cache) Peek(key canon.Fingerprint) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.disk == nil {
		return false
	}
	_, err := os.Stat(c.disk.path(key))
	return err == nil
}

// DoBytes is Do for serialized results, with the on-disk store in the
// lookup path: memory LRU, then disk (when enabled), then compute. A
// disk hit is promoted into the memory LRU; a computed storable result
// is written back to disk. The disk is best-effort — read and write
// failures count in the stats and fall through to compute.
//
// check, when non-nil, validates bytes read from disk before they are
// trusted: a corrupted or truncated entry (the store is plain files;
// anything can happen to them) counts as a disk error, is deleted so
// it cannot shadow the recomputation forever, and falls through to
// compute. In-memory and just-computed bytes are not re-checked — the
// process that produced them validated them by construction.
func (c *Cache) DoBytes(key canon.Fingerprint, check func([]byte) error, compute func() ([]byte, bool, error)) ([]byte, bool, error) {
	v, hit, err := c.Do(key, func() (Result, error) {
		if data, ok := c.diskRead(key, check); ok {
			return Result{V: data, Cost: int64(len(data)), Store: true}, nil
		}
		data, store, err := compute()
		if err != nil {
			return Result{}, err
		}
		if store {
			c.diskWrite(key, data)
		}
		return Result{V: data, Cost: int64(len(data)), Store: store}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.([]byte), hit, nil
}

// path returns the final file name of a key.
func (d *diskStore) path(key canon.Fingerprint) string {
	return filepath.Join(d.dir, key.String())
}

// diskRead fetches an entry from the store; ok is false when the store
// is disabled, the entry is absent, the read fails, or check rejects
// the content (in which case the entry is removed).
func (c *Cache) diskRead(key canon.Fingerprint, check func([]byte) error) (data []byte, ok bool) {
	if c.disk == nil {
		return nil, false
	}
	start := time.Now() //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	data, err := os.ReadFile(c.disk.path(key))
	c.scope.Distribution("disk_read_ns").Observe(time.Since(start).Nanoseconds()) //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	if err != nil {
		if !os.IsNotExist(err) {
			c.scope.Counter("disk_errors").Inc()
		}
		return nil, false
	}
	if check != nil {
		if err := check(data); err != nil {
			c.scope.Counter("disk_errors").Inc()
			os.Remove(c.disk.path(key))
			return nil, false
		}
	}
	c.scope.Counter("disk_hits").Inc()
	return data, true
}

// diskWrite stores an entry atomically: write a private temp file in
// the same directory, then rename it over the final fingerprint name.
func (c *Cache) diskWrite(key canon.Fingerprint, data []byte) {
	if c.disk == nil {
		return
	}
	start := time.Now() //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	err := c.disk.write(key, data)
	c.scope.Distribution("disk_write_ns").Observe(time.Since(start).Nanoseconds()) //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	if err != nil {
		c.scope.Counter("disk_errors").Inc()
		return
	}
	c.scope.Counter("disk_writes").Inc()
}

func (d *diskStore) write(key canon.Fingerprint, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, d.path(key)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
