package memo

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"repro/internal/canon"
	"repro/internal/iofault"
)

// Disk-tier hardening knobs. Writes that fail are retried a bounded
// number of times with a deterministic (attempt-proportional, never
// randomized) backoff: transient conditions — another process holding
// the directory, a briefly full disk — get a second chance, while a
// persistently broken disk costs a bounded, predictable amount of time
// before the cache degrades to memory-only behavior for that entry.
const (
	diskWriteAttempts = 3
	diskRetryBackoff  = 2 * time.Millisecond
)

// diskStore is a content-addressed directory of results: each entry is
// a file named by the full hex fingerprint, written atomically
// (temp-then-rename) so a crashed or concurrent writer can never leave
// a half-written entry under a final name. Two processes (or two
// caches) sharing a directory race only on renames of identical
// content — keys are content addresses — so the last rename winning is
// harmless. All I/O goes through an iofault.FS seam, so fault-injection
// tests can drive every error path deterministically.
type diskStore struct {
	dir   string
	fsys  iofault.FS
	sleep func(time.Duration)
}

// SetDir enables the on-disk store under dir on the real filesystem,
// creating it if needed. Only byte-valued entries (DoBytes) touch the
// disk; opaque in-memory values (Do) stay memory-only.
func (c *Cache) SetDir(dir string) error {
	return c.SetDirFS(dir, iofault.OS{})
}

// SetDirFS is SetDir over an explicit filesystem seam. Production code
// uses SetDir; tests substitute an iofault.Mem or iofault.Faulty to
// exercise crash and error paths without touching the real disk.
func (c *Cache) SetDirFS(dir string, fsys iofault.FS) error {
	if dir == "" {
		return fmt.Errorf("memo: empty cache directory")
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("memo: cache directory: %w", err)
	}
	c.disk = &diskStore{dir: dir, fsys: fsys, sleep: time.Sleep} //p8:allow determinism: retry backoff pacing is harness I/O hygiene, never simulated state; tests inject their own sleep
	return nil
}

// Dir returns the on-disk store's directory ("" when memory-only).
func (c *Cache) Dir() string {
	if c.disk == nil {
		return ""
	}
	return c.disk.dir
}

// Peek reports whether a result for key is already resident — in the
// memory LRU, or (when the on-disk store is enabled) as a disk entry.
// It is purely advisory: it promotes nothing, validates nothing,
// charges no stats, and the answer can be stale by the time the caller
// acts on it (a concurrent Do may insert or evict the key at any
// moment). p8d uses it to annotate freshly admitted jobs with a
// warm/cold hint without perturbing the cache.
func (c *Cache) Peek(key canon.Fingerprint) bool {
	c.mu.Lock()
	_, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.disk == nil {
		return false
	}
	_, err := c.disk.fsys.Stat(c.disk.path(key))
	return err == nil
}

// DoBytes is Do for serialized results, with the on-disk store in the
// lookup path: memory LRU, then disk (when enabled), then compute. A
// disk hit is promoted into the memory LRU; a computed storable result
// is written back to disk. The disk is best-effort — read and write
// failures count in the stats and fall through to compute.
//
// check, when non-nil, validates bytes read from disk before they are
// trusted: a corrupted or truncated entry (the store is plain files;
// anything can happen to them) counts as a disk error, is deleted so
// it cannot shadow the recomputation forever, and falls through to
// compute. In-memory and just-computed bytes are not re-checked — the
// process that produced them validated them by construction.
func (c *Cache) DoBytes(key canon.Fingerprint, check func([]byte) error, compute func() ([]byte, bool, error)) ([]byte, bool, error) {
	v, hit, err := c.Do(key, func() (Result, error) {
		if data, ok := c.diskRead(key, check); ok {
			return Result{V: data, Cost: int64(len(data)), Store: true}, nil
		}
		data, store, err := compute()
		if err != nil {
			return Result{}, err
		}
		if store {
			c.diskWrite(key, data)
		}
		return Result{V: data, Cost: int64(len(data)), Store: store}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.([]byte), hit, nil
}

// GetBytes fetches the bytes for key if they are already resident in
// the memory LRU or the on-disk store, without ever computing. A disk
// hit is promoted into the LRU exactly as DoBytes would promote it.
// The boolean is false when the key is simply absent; recovery uses
// GetBytes to re-serve reports for journal-replayed jobs and treats
// absence as "evicted since the previous run". GetBytes deliberately
// skips the singleflight: it never computes, so a duplicate concurrent
// disk read is harmless, and probing must not inject a "not found"
// error into a real compute's flight.
func (c *Cache) GetBytes(key canon.Fingerprint, check func([]byte) error) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touch(e)
		c.mu.Unlock()
		c.scope.Counter("hits").Inc()
		b, isBytes := e.val.([]byte)
		return b, isBytes
	}
	c.mu.Unlock()
	if data, ok := c.diskRead(key, check); ok {
		c.insert(key, data, int64(len(data)))
		return data, true
	}
	return nil, false
}

// path returns the final file name of a key.
func (d *diskStore) path(key canon.Fingerprint) string {
	return d.dir + "/" + key.String()
}

// diskRead fetches an entry from the store; ok is false when the store
// is disabled, the entry is absent, the read fails, or check rejects
// the content (in which case the entry is removed and counted under
// disk/corrupt_deleted).
func (c *Cache) diskRead(key canon.Fingerprint, check func([]byte) error) (data []byte, ok bool) {
	if c.disk == nil {
		return nil, false
	}
	start := time.Now() //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	data, err := c.disk.fsys.ReadFile(c.disk.path(key))
	c.scope.Distribution("disk_read_ns").Observe(time.Since(start).Nanoseconds()) //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.scope.Counter("disk_errors").Inc()
		}
		return nil, false
	}
	if check != nil {
		if err := check(data); err != nil {
			c.scope.Counter("disk_errors").Inc()
			c.scope.Child("disk").Counter("corrupt_deleted").Inc()
			if rerr := c.disk.fsys.Remove(c.disk.path(key)); rerr != nil {
				c.scope.Counter("disk_errors").Inc()
			}
			return nil, false
		}
	}
	c.scope.Counter("disk_hits").Inc()
	return data, true
}

// diskWrite stores an entry with bounded retries. Each failed attempt
// counts under disk/write_errors; each retry under disk/retries; a
// write that exhausts its attempts is abandoned (the cache serves the
// entry from memory and recomputes it in a future process).
func (c *Cache) diskWrite(key canon.Fingerprint, data []byte) {
	if c.disk == nil {
		return
	}
	disk := c.scope.Child("disk")
	start := time.Now() //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	var err error
	for attempt := 0; attempt < diskWriteAttempts; attempt++ {
		if attempt > 0 {
			disk.Counter("retries").Inc()
			c.disk.sleep(time.Duration(attempt) * diskRetryBackoff)
		}
		if err = c.disk.write(key, data); err == nil {
			break
		}
		disk.Counter("write_errors").Inc()
	}
	c.scope.Distribution("disk_write_ns").Observe(time.Since(start).Nanoseconds()) //p8:allow determinism: disk I/O timing is harness instrumentation, never simulated state
	if err != nil {
		c.scope.Counter("disk_errors").Inc()
		return
	}
	c.scope.Counter("disk_writes").Inc()
}

// write stores an entry atomically: write a private temp file in the
// same directory, then rename it over the final fingerprint name.
func (d *diskStore) write(key canon.Fingerprint, data []byte) error {
	tmp, err := d.fsys.CreateTemp(d.dir, "tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		if cerr := tmp.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		d.discard(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		d.discard(name)
		return err
	}
	if err := d.fsys.Rename(name, d.path(key)); err != nil {
		d.discard(name)
		return err
	}
	return nil
}

// discard best-effort-removes a temp file an aborted write left behind;
// a leftover temp is cosmetic (never matches a fingerprint name), so
// the removal error is deliberately dropped.
func (d *diskStore) discard(name string) {
	_ = d.fsys.Remove(name)
}
