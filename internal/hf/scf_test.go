package hf

import (
	"math"
	"sync"
	"testing"

	"repro/internal/linalg"
)

// smallMol builds a quick 4-atom, 12-function chain for SCF tests.
func smallMol() *Molecule {
	return MoleculeSpec{Name: "chain-4", Atoms: 4, Functions: 12, Shape: ShapeChain}.Build()
}

func TestSCFConverges(t *testing.T) {
	res, err := Run(smallMol(), Config{Mode: HFComp})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SCF did not converge in %d iterations", res.Iterations)
	}
	if res.Energy >= 0 {
		t.Errorf("total energy %v not negative", res.Energy)
	}
	if res.Iterations < 2 {
		t.Errorf("converged suspiciously fast: %d iterations", res.Iterations)
	}
}

// TestHFMemMatchesHFComp is the core correctness claim behind Table VI:
// the two algorithms are numerically identical, differing only in where
// the ERIs come from.
func TestHFMemMatchesHFComp(t *testing.T) {
	mol := smallMol()
	comp, err := Run(mol, Config{Mode: HFComp})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run(mol, Config{Mode: HFMem})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comp.Energy-mem.Energy) > 1e-8 {
		t.Errorf("energies differ: HF-Comp %v, HF-Mem %v", comp.Energy, mem.Energy)
	}
	if comp.Iterations != mem.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", comp.Iterations, mem.Iterations)
	}
	if comp.NonScreened != mem.NonScreened {
		t.Errorf("screened counts differ: %d vs %d", comp.NonScreened, mem.NonScreened)
	}
	if mem.Timings.Precomp <= 0 {
		t.Error("HF-Mem recorded no precompute time")
	}
	if comp.Timings.Precomp != 0 {
		t.Error("HF-Comp recorded precompute time")
	}
}

// TestFockBuildersMatchReference checks both production Fock builders
// against the direct quadruple-loop oracle.
func TestFockBuildersMatchReference(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 3, Functions: 8, Shape: ShapeChain}.Build()
	n := mol.NumFunctions()
	h := mol.CoreHamiltonian()
	// An arbitrary symmetric density.
	d := linalg.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := 0.1 / float64(1+i+j)
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	want := FockReference(mol, h, d)

	// Use a tolerance low enough that nothing is screened out, so the
	// comparison is exact.
	const tol = 1e-30
	pairs := BuildPairs(mol, 2)
	gotComp := fockRecompute(mol, h, d, pairs, tol, 3)
	if diff := linalg.MaxAbsDiff(gotComp, want); diff > 1e-9 {
		t.Errorf("fockRecompute differs from reference by %v", diff)
	}

	var stored []storedQuartet
	pairs.VisitNonScreened(tol, func(a, b int) {
		i, j := pairs.I[a], pairs.J[a]
		k, l := pairs.I[b], pairs.J[b]
		stored = append(stored, storedQuartet{i, j, k, l,
			ERI(mol.Basis[i], mol.Basis[j], mol.Basis[k], mol.Basis[l])})
	})
	gotMem := fockFromStored(h, d, stored, 4)
	if diff := linalg.MaxAbsDiff(gotMem, want); diff > 1e-9 {
		t.Errorf("fockFromStored differs from reference by %v", diff)
	}
}

// TestDensityTrace: 2 Tr(D S) must equal the electron count after SCF.
func TestDensityTrace(t *testing.T) {
	mol := smallMol()
	s := mol.OverlapMatrix()
	x := linalg.SymInvSqrt(s)
	h := mol.CoreHamiltonian()
	d := densityStep(h, x, mol.OccupiedOrbitals(), DensityEigen)
	ds := linalg.NewMatrix(d.N)
	linalg.MatMul(ds, d, s)
	if got := 2 * ds.Trace(); math.Abs(got-float64(mol.NumElectrons())) > 1e-8 {
		t.Errorf("2 Tr(DS) = %v, want %d electrons", got, mol.NumElectrons())
	}
}

// TestDensityIdempotent: D S D = D for the converged closed-shell
// density.
func TestDensityIdempotent(t *testing.T) {
	mol := smallMol()
	s := mol.OverlapMatrix()
	x := linalg.SymInvSqrt(s)
	h := mol.CoreHamiltonian()
	d := densityStep(h, x, mol.OccupiedOrbitals(), DensityEigen)
	tmp := linalg.NewMatrix(d.N)
	dsd := linalg.NewMatrix(d.N)
	linalg.MatMul(tmp, d, s)
	linalg.MatMul(dsd, tmp, d)
	if diff := linalg.MaxAbsDiff(dsd, d); diff > 1e-8 {
		t.Errorf("D S D differs from D by %v", diff)
	}
}

// TestScreeningReducesWork: a realistic tolerance must drop quartets on a
// spread-out chain, and tightening the tolerance must keep more.
func TestScreeningReducesWork(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 10, Functions: 30, Shape: ShapeChain}.Build()
	pairs := BuildPairs(mol, 0)
	p := int64(pairs.Pairs())
	all := p * (p + 1) / 2
	loose := pairs.CountNonScreened(1e-6)
	tight := pairs.CountNonScreened(1e-12)
	if loose >= tight {
		t.Errorf("loose %d >= tight %d", loose, tight)
	}
	if tight > all {
		t.Errorf("count %d exceeds total quartets %d", tight, all)
	}
	if loose == 0 {
		t.Error("everything screened out at 1e-6")
	}
	if tight == all {
		t.Error("nothing screened on a 10-atom chain at 1e-12; geometry too compact")
	}
}

// TestCountMatchesVisit: the analytic count must equal the enumeration.
func TestCountMatchesVisit(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 5, Functions: 15, Shape: ShapeChain}.Build()
	pairs := BuildPairs(mol, 0)
	for _, tol := range []float64{1e-4, 1e-8, 1e-12} {
		var visited int64
		pairs.VisitNonScreened(tol, func(a, b int) { visited++ })
		if count := pairs.CountNonScreened(tol); count != visited {
			t.Errorf("tol %g: count %d != visited %d", tol, count, visited)
		}
	}
}

// TestParallelVisitMatchesSerial: same quartets regardless of workers.
func TestParallelVisitMatchesSerial(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 5, Functions: 15, Shape: ShapeChain}.Build()
	pairs := BuildPairs(mol, 0)
	const tol = 1e-8
	serial := map[[2]int]int{}
	pairs.VisitNonScreened(tol, func(a, b int) { serial[[2]int{a, b}]++ })
	var mu sync.Mutex
	parallel := map[[2]int]int{}
	pairs.VisitNonScreenedParallel(tol, 4, func(_, a, b int) {
		mu.Lock()
		parallel[[2]int{a, b}]++
		mu.Unlock()
	})
	if len(serial) != len(parallel) {
		t.Fatalf("quartet sets differ: %d vs %d", len(serial), len(parallel))
	}
	for k, v := range serial {
		if v != 1 || parallel[k] != 1 {
			t.Fatalf("quartet %v visited %d/%d times", k, v, parallel[k])
		}
	}
}

// TestEnergyComponents: the decomposition must sum to the total, with
// physically sensible signs.
func TestEnergyComponents(t *testing.T) {
	res, err := Run(smallMol(), Config{Mode: HFMem})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Components
	if math.Abs(c.Total()-res.Energy) > 1e-8 {
		t.Errorf("components sum to %v, total energy %v", c.Total(), res.Energy)
	}
	if c.Kinetic <= 0 {
		t.Errorf("kinetic energy %v not positive", c.Kinetic)
	}
	if c.NuclearAttraction >= 0 {
		t.Errorf("nuclear attraction %v not negative", c.NuclearAttraction)
	}
	if c.TwoElectron <= 0 {
		t.Errorf("electron repulsion %v not positive", c.TwoElectron)
	}
	if c.NuclearRepulsion <= 0 {
		t.Errorf("nuclear repulsion %v not positive", c.NuclearRepulsion)
	}
}

// TestPurificationMatchesEigensolve: the SCF converges to the same
// energy whichever density builder runs — the paper's "spectral
// projector" stage is interchangeable with diagonalization.
func TestPurificationMatchesEigensolve(t *testing.T) {
	mol := smallMol()
	eig, err := Run(mol, Config{Mode: HFMem, Density: DensityEigen})
	if err != nil {
		t.Fatal(err)
	}
	pur, err := Run(mol, Config{Mode: HFMem, Density: DensityPurify})
	if err != nil {
		t.Fatal(err)
	}
	if !eig.Converged || !pur.Converged {
		t.Fatalf("convergence: eigen=%v purify=%v", eig.Converged, pur.Converged)
	}
	if math.Abs(eig.Energy-pur.Energy) > 1e-6 {
		t.Errorf("energies differ: eigensolve %v, purification %v", eig.Energy, pur.Energy)
	}
}

func TestDensityMethodString(t *testing.T) {
	if DensityEigen.String() != "eigensolve" || DensityPurify.String() != "purification" {
		t.Error("DensityMethod strings wrong")
	}
}

func TestModeString(t *testing.T) {
	if HFComp.String() != "HF-Comp" || HFMem.String() != "HF-Mem" {
		t.Error("Mode strings wrong")
	}
}

func TestResultPerIter(t *testing.T) {
	r := &Result{Iterations: 4}
	r.Timings.Fock = 400
	r.Timings.Density = 100
	if r.FockPerIter() != 100 || r.DensityPerIter() != 25 {
		t.Error("per-iteration division wrong")
	}
	var zero Result
	if zero.FockPerIter() != 0 {
		t.Error("zero iterations should give zero")
	}
}
