package hf

import (
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/units"
)

// Mode selects the ERI strategy of Section V-C.
type Mode int

// The two algorithm variants Table VI compares.
const (
	// HFComp recomputes all non-screened ERIs at every SCF iteration,
	// the strategy of conventional packages like NWChem.
	HFComp Mode = iota
	// HFMem precomputes the non-screened ERIs once and stores them,
	// the strategy the E870's memory capacity enables.
	HFMem
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == HFComp {
		return "HF-Comp"
	}
	return "HF-Mem"
}

// DensityMethod selects how the density stage computes the spectral
// projector of the Fock matrix.
type DensityMethod int

// Density stage variants.
const (
	// DensityEigen diagonalizes the orthogonalized Fock matrix (Jacobi)
	// and occupies the lowest orbitals — the textbook Roothaan step.
	DensityEigen DensityMethod = iota
	// DensityPurify builds the projector by canonical McWeeny
	// purification, avoiding diagonalization — the "spectral projector"
	// computation Section V-C refers to.
	DensityPurify
)

// String implements fmt.Stringer.
func (d DensityMethod) String() string {
	if d == DensityPurify {
		return "purification"
	}
	return "eigensolve"
}

// Config controls an SCF run.
type Config struct {
	Mode      Mode
	Density   DensityMethod
	MaxIters  int     // default 50
	ConvTol   float64 // max-abs density change; default 1e-6
	ScreenTol float64 // Schwarz tolerance; default 1e-10 (the paper's)
	Threads   int     // 0 = all CPUs
	Damping   float64 // fraction of the old density retained; default 0.3
	// UseDIIS enables Pulay convergence acceleration; damping is then
	// ignored (DIIS supplies the mixing).
	UseDIIS bool
}

func (c Config) withDefaults() Config {
	if c.MaxIters == 0 {
		c.MaxIters = 50
	}
	if c.ConvTol == 0 {
		c.ConvTol = 1e-6
	}
	if c.ScreenTol == 0 {
		c.ScreenTol = 1e-10
	}
	if c.Damping == 0 {
		c.Damping = 0.3
	}
	return c
}

// Timings breaks an SCF run into the Table VI components.
type Timings struct {
	Precomp time.Duration // ERI precomputation (HF-Mem only, once)
	Fock    time.Duration // total Fock-build time across iterations
	Density time.Duration // total density-build time across iterations
}

// EnergyComponents decomposes the total energy (all in Hartree).
type EnergyComponents struct {
	Kinetic           float64 // 2 Tr(D T), positive
	NuclearAttraction float64 // 2 Tr(D V), negative for bound electrons
	TwoElectron       float64 // Tr(D G), electron-electron repulsion
	NuclearRepulsion  float64
}

// Total returns the components' sum.
func (e EnergyComponents) Total() float64 {
	return e.Kinetic + e.NuclearAttraction + e.TwoElectron + e.NuclearRepulsion
}

// Result summarizes an SCF run.
type Result struct {
	Molecule    string
	Mode        Mode
	Energy      float64 // total energy, Hartree
	Components  EnergyComponents
	Iterations  int
	Converged   bool
	NonScreened int64 // surviving unique ERI quartets
	// StoredERIBytes is the HF-Mem value-storage footprint at 8 bytes
	// per surviving quartet (the Table V accounting).
	StoredERIBytes units.Bytes
	Timings        Timings
	Total          time.Duration
}

// FockPerIter returns the mean Fock-build time per iteration.
func (r *Result) FockPerIter() time.Duration {
	if r.Iterations == 0 {
		return 0
	}
	return r.Timings.Fock / time.Duration(r.Iterations)
}

// DensityPerIter returns the mean density-build time per iteration.
func (r *Result) DensityPerIter() time.Duration {
	if r.Iterations == 0 {
		return 0
	}
	return r.Timings.Density / time.Duration(r.Iterations)
}

// storedQuartet is one retained ERI for HF-Mem.
type storedQuartet struct {
	i, j, k, l int32
	v          float64
}

// Run executes the restricted Hartree-Fock SCF procedure.
func Run(mol *Molecule, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := mol.NumFunctions()
	nOcc := mol.OccupiedOrbitals()
	if nOcc > n {
		return nil, fmt.Errorf("hf: %d occupied orbitals exceed %d basis functions", nOcc, n)
	}
	start := time.Now()
	res := &Result{Molecule: mol.Name, Mode: cfg.Mode}

	s := mol.OverlapMatrix()
	h := mol.CoreHamiltonian()
	x := linalg.SymInvSqrt(s)
	pairs := BuildPairs(mol, cfg.Threads)
	res.NonScreened = pairs.CountNonScreened(cfg.ScreenTol)
	res.StoredERIBytes = units.Bytes(res.NonScreened) * 8

	var stored []storedQuartet
	if cfg.Mode == HFMem {
		t0 := time.Now()
		stored = make([]storedQuartet, 0, res.NonScreened)
		pairs.VisitNonScreened(cfg.ScreenTol, func(a, b int) {
			i, j := pairs.I[a], pairs.J[a]
			k, l := pairs.I[b], pairs.J[b]
			v := ERI(mol.Basis[i], mol.Basis[j], mol.Basis[k], mol.Basis[l])
			stored = append(stored, storedQuartet{i, j, k, l, v})
		})
		res.Timings.Precomp = time.Since(t0)
	}

	// Initial guess: core Hamiltonian.
	d := densityStep(h, x, nOcc, cfg.Density)
	var f *linalg.Matrix
	var accel *diis
	if cfg.UseDIIS {
		accel = newDIIS(6)
	}
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		res.Iterations = iter

		t0 := time.Now()
		if cfg.Mode == HFMem {
			f = fockFromStored(h, d, stored, cfg.Threads)
		} else {
			f = fockRecompute(mol, h, d, pairs, cfg.ScreenTol, cfg.Threads)
		}
		if accel != nil {
			e := diisError(f, d, s)
			accel.push(f, e)
			if fx := accel.extrapolate(); fx != nil {
				f = fx
			}
		}
		res.Timings.Fock += time.Since(t0)

		t0 = time.Now()
		dNew := densityStep(f, x, nOcc, cfg.Density)
		res.Timings.Density += time.Since(t0)

		delta := linalg.MaxAbsDiff(dNew, d)
		if accel != nil {
			// DIIS supplies the mixing; take the new density directly.
			copy(d.Data, dNew.Data)
		} else {
			// Damped update stabilizes the synthetic systems.
			for kk := range d.Data {
				d.Data[kk] = (1-cfg.Damping)*dNew.Data[kk] + cfg.Damping*d.Data[kk]
			}
		}
		if delta < cfg.ConvTol {
			res.Converged = true
			break
		}
	}

	// E = sum_ij D_ij (H_ij + F_ij) + E_nuc (closed-shell convention with
	// D built from doubly occupied orbitals carrying unit weight).
	var elec float64
	for k := range d.Data {
		elec += d.Data[k] * (h.Data[k] + f.Data[k])
	}
	res.Energy = elec + mol.NuclearRepulsion()

	// Decomposition: E = 2 Tr(D T) + 2 Tr(D V) + Tr(D G) + E_nucrep.
	tm := mol.KineticMatrix()
	vm := mol.NuclearMatrix()
	for k := range d.Data {
		res.Components.Kinetic += 2 * d.Data[k] * tm.Data[k]
		res.Components.NuclearAttraction += 2 * d.Data[k] * vm.Data[k]
		res.Components.TwoElectron += d.Data[k] * (f.Data[k] - h.Data[k])
	}
	res.Components.NuclearRepulsion = mol.NuclearRepulsion()

	res.Total = time.Since(start)
	return res, nil
}

// densityStep solves the Roothaan equation in the orthogonal basis:
// F' = X F X, then either eigensolve + occupy (C = X C',
// D = C_occ C_occ^T) or McWeeny purification of F' followed by the
// back-transform D = X D' X.
func densityStep(f, x *linalg.Matrix, nOcc int, method DensityMethod) *linalg.Matrix {
	n := f.N
	tmp := linalg.NewMatrix(n)
	fp := linalg.NewMatrix(n)
	linalg.MatMul(tmp, x, f)
	linalg.MatMul(fp, tmp, x)
	// Symmetrize against round-off.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (fp.At(i, j) + fp.At(j, i)) / 2
			fp.Set(i, j, v)
			fp.Set(j, i, v)
		}
	}
	if method == DensityPurify {
		dp, err := linalg.McWeenyPurify(fp, nOcc, 1e-11, 300)
		if err == nil {
			d := linalg.NewMatrix(n)
			linalg.MatMul(tmp, x, dp)
			linalg.MatMul(d, tmp, x)
			return d
		}
		// Purification can stall when HOMO and LUMO are degenerate
		// mid-SCF; fall back to the eigensolver for this step.
	}
	_, cp := linalg.JacobiEigen(fp)
	c := linalg.NewMatrix(n)
	linalg.MatMul(c, x, cp)
	return linalg.DensityFromOrbitals(c, nOcc)
}

// FockReference builds G_ab = sum_cd D_cd (2(ab|cd) - (ac|bd)) by direct
// quadruple loop with no screening or symmetry — the oracle the fast
// builders are tested against.
func FockReference(mol *Molecule, h, d *linalg.Matrix) *linalg.Matrix {
	n := mol.NumFunctions()
	f := h.Clone()
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			var g float64
			for c := 0; c < n; c++ {
				for dd := 0; dd < n; dd++ {
					g += d.At(c, dd) * (2*ERI(mol.Basis[a], mol.Basis[b], mol.Basis[c], mol.Basis[dd]) -
						ERI(mol.Basis[a], mol.Basis[c], mol.Basis[b], mol.Basis[dd]))
				}
			}
			f.Add(a, b, g)
		}
	}
	return f
}

// applyQuartet adds one ERI value's contributions to G for every distinct
// permutation image of the canonical quartet: for an image (a,b,c,d),
// the Coulomb term adds 2 v D[c,d] to G[a,b] and the exchange term
// subtracts v D[b,d] from G[a,c].
func applyQuartet(g, d *linalg.Matrix, i, j, k, l int32, v float64) {
	type img struct{ a, b, c, dd int32 }
	images := [8]img{
		{i, j, k, l}, {j, i, k, l}, {i, j, l, k}, {j, i, l, k},
		{k, l, i, j}, {l, k, i, j}, {k, l, j, i}, {l, k, j, i},
	}
	n := 0
	var seen [8]img
	for _, im := range images {
		dup := false
		for s := 0; s < n; s++ {
			if seen[s] == im {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[n] = im
		n++
		g.Add(int(im.a), int(im.b), 2*v*d.At(int(im.c), int(im.dd)))
		g.Add(int(im.a), int(im.c), -v*d.At(int(im.b), int(im.dd)))
	}
}

// fockFromStored builds F = H + G(D) from the precomputed quartet list
// on the persistent worker team, with per-worker accumulators. The
// split is static (every stored quartet costs the same) so the
// per-worker partial sums merge in a deterministic order and the SCF
// trajectory is bit-reproducible for a fixed worker count.
func fockFromStored(h, d *linalg.Matrix, stored []storedQuartet, threads int) *linalg.Matrix {
	workers := parallel.Workers(threads)
	parts := make([]*linalg.Matrix, workers)
	parallel.StaticFor(workers, len(stored), func(w, lo, hi int) {
		g := linalg.NewMatrix(h.N)
		for _, q := range stored[lo:hi] {
			applyQuartet(g, d, q.i, q.j, q.k, q.l, q.v)
		}
		parts[w] = g
	})
	f := h.Clone()
	for _, g := range parts {
		if g == nil {
			continue
		}
		for k := range f.Data {
			f.Data[k] += g.Data[k]
		}
	}
	return f
}

// fockRecompute builds F = H + G(D) by walking the surviving quartets and
// recomputing each ERI — the HF-Comp inner loop — in parallel with
// per-worker accumulators.
func fockRecompute(mol *Molecule, h, d *linalg.Matrix, pairs *PairList, tol float64, threads int) *linalg.Matrix {
	workers := parallel.Workers(threads)
	parts := make([]*linalg.Matrix, workers)
	for w := range parts {
		parts[w] = linalg.NewMatrix(h.N)
	}
	pairs.VisitNonScreenedParallel(tol, workers, func(w, a, b int) {
		i, j := pairs.I[a], pairs.J[a]
		k, l := pairs.I[b], pairs.J[b]
		v := ERI(mol.Basis[i], mol.Basis[j], mol.Basis[k], mol.Basis[l])
		applyQuartet(parts[w], d, i, j, k, l, v)
	})
	f := h.Clone()
	for _, g := range parts {
		for k := range f.Data {
			f.Data[k] += g.Data[k]
		}
	}
	return f
}
