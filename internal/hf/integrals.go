package hf

import (
	"math"

	"repro/internal/linalg"
)

// BoysF0 is the zeroth-order Boys function F0(t) = integral over [0,1] of
// exp(-t x^2) dx, the radial kernel of every Coulomb-type integral over
// s Gaussians.
func BoysF0(t float64) float64 {
	if t < 1e-12 {
		return 1 - t/3
	}
	return 0.5 * math.Sqrt(math.Pi/t) * math.Erf(math.Sqrt(t))
}

// gaussProduct returns the Gaussian product parameters of two s
// primitives: total exponent p, reduced exponent mu, squared distance
// R2, and product center P.
func gaussProduct(a, b BasisFn) (p, mu, r2 float64, center Vec3) {
	p = a.Alpha + b.Alpha
	mu = a.Alpha * b.Alpha / p
	r2 = a.Center.Sub(b.Center).Norm2()
	center = a.Center.Scale(a.Alpha / p).Add(b.Center.Scale(b.Alpha / p))
	return p, mu, r2, center
}

// Overlap returns <a|b>.
func Overlap(a, b BasisFn) float64 {
	p, mu, r2, _ := gaussProduct(a, b)
	return a.Norm * b.Norm * math.Pow(math.Pi/p, 1.5) * math.Exp(-mu*r2)
}

// Kinetic returns <a| -1/2 Laplacian |b>.
func Kinetic(a, b BasisFn) float64 {
	p, mu, r2, _ := gaussProduct(a, b)
	s := a.Norm * b.Norm * math.Pow(math.Pi/p, 1.5) * math.Exp(-mu*r2)
	return mu * (3 - 2*mu*r2) * s
}

// NuclearAttraction returns <a| sum_C -Z_C/|r-C| |b>.
func NuclearAttraction(a, b BasisFn, atoms []Atom) float64 {
	p, mu, r2, center := gaussProduct(a, b)
	pre := a.Norm * b.Norm * 2 * math.Pi / p * math.Exp(-mu*r2)
	var v float64
	for _, at := range atoms {
		t := p * center.Sub(at.Pos).Norm2()
		v -= at.Charge * pre * BoysF0(t)
	}
	return v
}

// ERI returns the two-electron repulsion integral (ab|cd) in chemists'
// notation over normalized s primitives.
func ERI(a, b, c, d BasisFn) float64 {
	p, muAB, r2AB, pCenter := gaussProduct(a, b)
	q, muCD, r2CD, qCenter := gaussProduct(c, d)
	pre := a.Norm * b.Norm * c.Norm * d.Norm *
		2 * math.Pow(math.Pi, 2.5) / (p * q * math.Sqrt(p+q)) *
		math.Exp(-muAB*r2AB) * math.Exp(-muCD*r2CD)
	t := p * q / (p + q) * pCenter.Sub(qCenter).Norm2()
	return pre * BoysF0(t)
}

// OverlapMatrix builds S.
func (m *Molecule) OverlapMatrix() *linalg.Matrix {
	n := m.NumFunctions()
	s := linalg.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := Overlap(m.Basis[i], m.Basis[j])
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	return s
}

// KineticMatrix builds T.
func (m *Molecule) KineticMatrix() *linalg.Matrix {
	n := m.NumFunctions()
	t := linalg.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := Kinetic(m.Basis[i], m.Basis[j])
			t.Set(i, j, v)
			t.Set(j, i, v)
		}
	}
	return t
}

// NuclearMatrix builds V, the electron-nuclear attraction operator.
func (m *Molecule) NuclearMatrix() *linalg.Matrix {
	n := m.NumFunctions()
	v := linalg.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			val := NuclearAttraction(m.Basis[i], m.Basis[j], m.Atoms)
			v.Set(i, j, val)
			v.Set(j, i, val)
		}
	}
	return v
}

// CoreHamiltonian builds H_core = T + V.
func (m *Molecule) CoreHamiltonian() *linalg.Matrix {
	h := m.KineticMatrix()
	v := m.NuclearMatrix()
	for k := range h.Data {
		h.Data[k] += v.Data[k]
	}
	return h
}
