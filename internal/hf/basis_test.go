package hf

import (
	"math"
	"testing"
)

func TestVec3(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 6, 8}
	if d := b.Sub(a); d != (Vec3{3, 4, 5}) {
		t.Errorf("Sub = %v", d)
	}
	if n := a.Norm2(); n != 14 {
		t.Errorf("Norm2 = %v", n)
	}
	if s := a.Scale(2); s != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", s)
	}
	if s := a.Add(b); s != (Vec3{5, 8, 11}) {
		t.Errorf("Add = %v", s)
	}
}

func TestNewBasisFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha <= 0 did not panic")
		}
	}()
	NewBasisFn(Vec3{}, 0)
}

func TestAttachBasisDistribution(t *testing.T) {
	atoms := Chain(3, 2.9)
	m := AttachBasis("t", atoms, 10)
	if m.NumFunctions() != 10 {
		t.Fatalf("functions = %d", m.NumFunctions())
	}
	// 10 over 3 atoms: 4, 3, 3.
	counts := map[Vec3]int{}
	for _, b := range m.Basis {
		counts[b.Center]++
	}
	if len(counts) != 3 {
		t.Fatalf("functions on %d centers", len(counts))
	}
	if counts[atoms[0].Pos] != 4 || counts[atoms[1].Pos] != 3 {
		t.Errorf("distribution = %v", counts)
	}
}

func TestAttachBasisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("too few functions did not panic")
		}
	}()
	AttachBasis("t", Chain(5, 2.9), 3)
}

func TestElectronsAndOccupation(t *testing.T) {
	m := AttachBasis("t", Chain(4, 2.9), 8)
	if m.NumElectrons() != 8 {
		t.Errorf("electrons = %d, want 8 (Z=2 per atom)", m.NumElectrons())
	}
	if m.OccupiedOrbitals() != 4 {
		t.Errorf("occupied = %d", m.OccupiedOrbitals())
	}
}

func TestNuclearRepulsionTwoAtoms(t *testing.T) {
	atoms := []Atom{
		{Charge: 2, Pos: Vec3{}},
		{Charge: 3, Pos: Vec3{X: 2}},
	}
	m := &Molecule{Atoms: atoms}
	if got := m.NuclearRepulsion(); math.Abs(got-3) > 1e-12 {
		t.Errorf("E_nuc = %v, want 3", got)
	}
}

func TestGeometryBuilders(t *testing.T) {
	chain := Chain(10, 2.9)
	if len(chain) != 10 {
		t.Fatal("chain size")
	}
	// Chain must be extended: end-to-end distance ~ n * spacing.
	if d := chain[9].Pos.Sub(chain[0].Pos).Norm2(); d < 600 {
		t.Errorf("chain end-to-end^2 = %v, want ~680", d)
	}

	sheet := Sheet(16, 2.7)
	if len(sheet) != 16 {
		t.Fatal("sheet size")
	}
	for _, a := range sheet {
		if a.Pos.Z != 0 {
			t.Fatal("sheet not planar")
		}
	}

	helix := Helix(20, 9, 6.5, 0.55)
	if len(helix) != 20 {
		t.Fatal("helix size")
	}
	// All on the cylinder of radius 9.
	for _, a := range helix {
		r := math.Hypot(a.Pos.X, a.Pos.Y)
		if math.Abs(r-9) > 1e-9 {
			t.Fatalf("helix radius %v", r)
		}
	}

	glob := Globule(40, 3.1, 7)
	if len(glob) != 40 {
		t.Fatal("globule size")
	}
	for i := range glob {
		for j := i + 1; j < len(glob); j++ {
			if glob[i].Pos.Sub(glob[j].Pos).Norm2() < 3.1*3.1-1e-9 {
				t.Fatalf("globule atoms %d,%d too close", i, j)
			}
		}
	}
	// Deterministic.
	glob2 := Globule(40, 3.1, 7)
	for i := range glob {
		if glob[i] != glob2[i] {
			t.Fatal("globule not deterministic")
		}
	}
}

func TestTableVSpecs(t *testing.T) {
	specs := TableV()
	if len(specs) != 5 {
		t.Fatalf("Table V has %d systems", len(specs))
	}
	wantAtoms := map[string]int{
		"alkane-842": 842, "graphene-252": 252, "5-mer": 326,
		"1hsg-28": 122, "1hsg-38": 387,
	}
	wantFuncs := map[string]int{
		"alkane-842": 6730, "graphene-252": 3204, "5-mer": 3453,
		"1hsg-28": 1159, "1hsg-38": 3555,
	}
	for _, s := range specs {
		if s.Atoms != wantAtoms[s.Name] {
			t.Errorf("%s atoms = %d, want %d", s.Name, s.Atoms, wantAtoms[s.Name])
		}
		if s.Functions != wantFuncs[s.Name] {
			t.Errorf("%s functions = %d, want %d", s.Name, s.Functions, wantFuncs[s.Name])
		}
		if s.PaperSpeedup < 3 || s.PaperSpeedup > 6 {
			t.Errorf("%s speedup reference %v", s.Name, s.PaperSpeedup)
		}
	}
}

func TestScaledSpec(t *testing.T) {
	full := TableV()[0] // alkane-842, 6730 functions
	sc := full.Scaled(200)
	if sc.Functions != 200 {
		t.Errorf("scaled functions = %d", sc.Functions)
	}
	// Proportional atoms: 842 * 200/6730 ~ 25.
	if sc.Atoms < 20 || sc.Atoms > 30 {
		t.Errorf("scaled atoms = %d", sc.Atoms)
	}
	if sc.PaperERIs != full.PaperERIs {
		t.Error("scaled spec lost paper references")
	}
	// No-op when already small.
	if s2 := sc.Scaled(500); s2.Functions != 200 {
		t.Error("Scaled should not grow")
	}
	// Build works.
	m := sc.Build()
	if m.NumFunctions() != 200 {
		t.Errorf("built functions = %d", m.NumFunctions())
	}
}

func TestScaledPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("maxFunctions <= 0 did not panic")
		}
	}()
	TableV()[0].Scaled(0)
}

func TestShapeString(t *testing.T) {
	want := map[Shape]string{
		ShapeChain: "chain", ShapeSheet: "sheet",
		ShapeHelix: "helix", ShapeGlobule: "globule",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d -> %q", int(s), s.String())
		}
	}
}
