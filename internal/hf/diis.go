package hf

import (
	"repro/internal/linalg"
)

// diis implements Pulay's Direct Inversion in the Iterative Subspace:
// it keeps the last few Fock matrices together with their commutator
// error vectors e = F D S - S D F, and extrapolates the next Fock matrix
// as the error-minimizing linear combination. DIIS is the standard SCF
// accelerator in production quantum chemistry codes; the paper's
// iteration counts (12-23) are typical DIIS-converged runs.
type diis struct {
	maxVectors int
	focks      []*linalg.Matrix
	errs       []*linalg.Matrix
}

func newDIIS(maxVectors int) *diis {
	if maxVectors < 2 {
		maxVectors = 6
	}
	return &diis{maxVectors: maxVectors}
}

// errorVector returns F D S - S D F, which vanishes at SCF convergence.
func diisError(f, d, s *linalg.Matrix) *linalg.Matrix {
	n := f.N
	tmp := linalg.NewMatrix(n)
	fds := linalg.NewMatrix(n)
	linalg.MatMul(tmp, f, d)
	linalg.MatMul(fds, tmp, s)
	sdf := linalg.NewMatrix(n)
	linalg.MatMul(tmp, s, d)
	linalg.MatMul(sdf, tmp, f)
	for k := range fds.Data {
		fds.Data[k] -= sdf.Data[k]
	}
	return fds
}

// maxErr returns the error vector's max-abs element, the DIIS
// convergence measure.
func maxErr(e *linalg.Matrix) float64 {
	var v float64
	for _, x := range e.Data {
		if x < 0 {
			x = -x
		}
		if x > v {
			v = x
		}
	}
	return v
}

// push adds a Fock/error pair, dropping the oldest beyond capacity.
func (dx *diis) push(f, e *linalg.Matrix) {
	dx.focks = append(dx.focks, f.Clone())
	dx.errs = append(dx.errs, e)
	if len(dx.focks) > dx.maxVectors {
		dx.focks = dx.focks[1:]
		dx.errs = dx.errs[1:]
	}
}

// extrapolate returns the DIIS linear combination of the stored Fock
// matrices, or nil when the subspace is too small or the B system is
// singular (callers then use the raw Fock matrix).
func (dx *diis) extrapolate() *linalg.Matrix {
	k := len(dx.focks)
	if k < 2 {
		return nil
	}
	// Build the (k+1) x (k+1) DIIS system:
	//   [ B  -1 ] [ c      ]   [ 0 ]
	//   [ -1  0 ] [ lambda ] = [ -1 ]
	// with B_ij = <e_i, e_j>.
	dim := k + 1
	a := make([]float64, dim*dim)
	b := make([]float64, dim)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var dot float64
			for t := range dx.errs[i].Data {
				dot += dx.errs[i].Data[t] * dx.errs[j].Data[t]
			}
			a[i*dim+j] = dot
		}
		a[i*dim+k] = -1
		a[k*dim+i] = -1
	}
	b[k] = -1
	c, err := linalg.SolveLinear(a, b)
	if err != nil {
		// Discard the oldest vector and let the caller proceed raw;
		// the next push rebuilds a better-conditioned subspace.
		dx.focks = dx.focks[1:]
		dx.errs = dx.errs[1:]
		return nil
	}
	out := linalg.NewMatrix(dx.focks[0].N)
	for i := 0; i < k; i++ {
		ci := c[i]
		for t := range out.Data {
			out.Data[t] += ci * dx.focks[i].Data[t]
		}
	}
	return out
}
