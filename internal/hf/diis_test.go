package hf

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// TestDIISMatchesDamping: DIIS must reach the same fixed point as the
// damped iteration.
func TestDIISMatchesDamping(t *testing.T) {
	mol := smallMol()
	plain, err := Run(mol, Config{Mode: HFMem})
	if err != nil {
		t.Fatal(err)
	}
	diis, err := Run(mol, Config{Mode: HFMem, UseDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !diis.Converged {
		t.Fatalf("convergence: plain=%v diis=%v", plain.Converged, diis.Converged)
	}
	if math.Abs(plain.Energy-diis.Energy) > 1e-5 {
		t.Errorf("energies differ: damped %v, DIIS %v", plain.Energy, diis.Energy)
	}
}

// TestDIISAccelerates: on a slower-converging system, DIIS needs no more
// iterations than plain damping (usually strictly fewer).
func TestDIISAccelerates(t *testing.T) {
	mol := MoleculeSpec{Name: "chain-8", Atoms: 8, Functions: 24, Shape: ShapeChain}.Build()
	plain, err := Run(mol, Config{Mode: HFMem, MaxIters: 80})
	if err != nil {
		t.Fatal(err)
	}
	diis, err := Run(mol, Config{Mode: HFMem, MaxIters: 80, UseDIIS: true})
	if err != nil {
		t.Fatal(err)
	}
	if !diis.Converged {
		t.Fatal("DIIS did not converge")
	}
	if diis.Iterations > plain.Iterations {
		t.Errorf("DIIS took %d iterations vs damped %d", diis.Iterations, plain.Iterations)
	}
}

func TestDIISErrorVanishesAtConvergence(t *testing.T) {
	mol := smallMol()
	s := mol.OverlapMatrix()
	x := linalg.SymInvSqrt(s)
	h := mol.CoreHamiltonian()
	pairs := BuildPairs(mol, 0)
	d := densityStep(h, x, mol.OccupiedOrbitals(), DensityEigen)
	// Iterate to convergence manually, then check the commutator.
	var f *linalg.Matrix
	for i := 0; i < 60; i++ {
		f = fockRecompute(mol, h, d, pairs, 1e-12, 0)
		dNew := densityStep(f, x, mol.OccupiedOrbitals(), DensityEigen)
		if linalg.MaxAbsDiff(dNew, d) < 1e-10 {
			d = dNew
			break
		}
		for k := range d.Data {
			d.Data[k] = 0.7*dNew.Data[k] + 0.3*d.Data[k]
		}
	}
	e := diisError(f, d, s)
	if maxErr(e) > 1e-6 {
		t.Errorf("commutator FDS-SDF = %v at convergence, want ~0", maxErr(e))
	}
}

func TestDIISSubspaceManagement(t *testing.T) {
	dx := newDIIS(3)
	n := 4
	for i := 0; i < 6; i++ {
		f := linalg.NewMatrix(n)
		e := linalg.NewMatrix(n)
		f.Set(0, 0, float64(i))
		e.Set(0, 0, 1.0/float64(i+1))
		e.Set(1, 1, 0.1*float64(i%2)+0.01) // keep B nonsingular
		dx.push(f, e)
	}
	if len(dx.focks) != 3 {
		t.Errorf("subspace holds %d vectors, want 3", len(dx.focks))
	}
	if out := dx.extrapolate(); out == nil {
		t.Error("extrapolation failed on a healthy subspace")
	}
}

func TestDIISTooFewVectors(t *testing.T) {
	dx := newDIIS(4)
	dx.push(linalg.NewMatrix(2), linalg.NewMatrix(2))
	if dx.extrapolate() != nil {
		t.Error("extrapolation with one vector should return nil")
	}
}

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	x, err := linalg.SolveLinear([]float64{2, 1, 1, 3}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	if _, err := linalg.SolveLinear([]float64{1, 2, 2, 4}, []float64{1, 2}); err == nil {
		t.Error("singular system solved")
	}
	if _, err := linalg.SolveLinear([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Error("malformed system accepted")
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	x, err := linalg.SolveLinear([]float64{0, 1, 1, 0}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("solution = %v, want [3 2]", x)
	}
}
