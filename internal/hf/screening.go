package hf

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// PairList holds the unique basis-function pairs (i >= j) with their
// Schwarz factors q_ij = sqrt((ij|ij)). The Cauchy-Schwarz bound
// |(ij|kl)| <= q_ij q_kl is the screening criterion of Section V-C: a
// quartet whose bound falls below the tolerance is dropped without
// computing it.
type PairList struct {
	N int // basis size
	I []int32
	J []int32
	Q []float64
}

// BuildPairs computes the Schwarz factors for every unique pair, in
// parallel over rows on the persistent worker team. Row i holds i+1
// pairs, so row cost grows linearly down the triangle; dynamic chunking
// keeps the workers balanced without a triangular pre-split.
func BuildPairs(m *Molecule, threads int) *PairList {
	n := m.NumFunctions()
	p := &PairList{N: n}
	nPairs := n * (n + 1) / 2
	p.I = make([]int32, nPairs)
	p.J = make([]int32, nPairs)
	p.Q = make([]float64, nPairs)
	workers := parallel.Workers(threads)
	parallel.For(workers, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := i * (i + 1) / 2
			for j := 0; j <= i; j++ {
				bi, bj := m.Basis[i], m.Basis[j]
				v := ERI(bi, bj, bi, bj)
				if v < 0 {
					v = 0
				}
				p.I[base+j] = int32(i)
				p.J[base+j] = int32(j)
				p.Q[base+j] = math.Sqrt(v)
			}
		}
	})
	return p
}

// Pairs returns the number of unique pairs.
func (p *PairList) Pairs() int { return len(p.Q) }

// CountNonScreened returns the number of unique ERI quartets that survive
// Schwarz screening at the given tolerance: unordered pairs (p1 <= p2) of
// unique function pairs with q_p1 * q_p2 >= tol. This is the Table V
// "non-screened ERIs" count, computable without touching any quartet.
func (p *PairList) CountNonScreened(tol float64) int64 {
	if tol <= 0 {
		panic(fmt.Sprintf("hf: screening tolerance %g", tol))
	}
	qs := append([]float64(nil), p.Q...)
	sort.Float64s(qs) // ascending
	var count int64
	n := len(qs)
	for hi := n - 1; hi >= 0; hi-- {
		if qs[hi] == 0 {
			break
		}
		need := tol / qs[hi]
		// Smallest index lo with qs[lo] >= need; partners in [lo, hi].
		lo := sort.SearchFloat64s(qs[:hi+1], need)
		if lo > hi {
			continue
		}
		count += int64(hi - lo + 1)
	}
	// Each unordered quartet {p1 <= p2 by sorted position} is counted
	// exactly once, at hi = p2.
	return count
}

// CountNonScreenedEntries returns the number of surviving entries of the
// full four-dimensional ERI tensor — the Table V accounting, which does
// not reduce by the 8-fold permutational symmetry. An off-diagonal
// function pair (i > j) appears as both (ij) and (ji), so a surviving
// quartet of pairs (p1, p2) contributes deg(p1) * deg(p2) entries for the
// bra-ket orderings times 2 for bra<->ket when p1 != p2.
func (p *PairList) CountNonScreenedEntries(tol float64) int64 {
	if tol <= 0 {
		panic(fmt.Sprintf("hf: screening tolerance %g", tol))
	}
	type wq struct {
		q float64
		w int64 // 1 for diagonal pairs (i == j), 2 otherwise
	}
	items := make([]wq, len(p.Q))
	for k := range p.Q {
		w := int64(2)
		if p.I[k] == p.J[k] {
			w = 1
		}
		items[k] = wq{q: p.Q[k], w: w}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].q < items[b].q })
	// Prefix sums of weights over the ascending-q order.
	prefix := make([]int64, len(items)+1)
	for k, it := range items {
		prefix[k+1] = prefix[k] + it.w
	}
	qs := make([]float64, len(items))
	for k := range items {
		qs[k] = items[k].q
	}
	var entries int64
	for hi := len(items) - 1; hi >= 0; hi-- {
		if qs[hi] == 0 {
			break
		}
		need := tol / qs[hi]
		lo := sort.SearchFloat64s(qs[:hi+1], need)
		if lo > hi {
			continue
		}
		// Partners strictly below hi contribute twice (bra<->ket); the
		// diagonal partner (p1 == p2) contributes once.
		wBelow := prefix[hi] - prefix[lo]
		entries += items[hi].w * (2*wBelow + items[hi].w)
	}
	return entries
}

// VisitNonScreened enumerates the surviving quartets as pair-index pairs
// (a, b) with the guarantee that each unordered quartet is visited
// exactly once. Visits run sequentially.
func (p *PairList) VisitNonScreened(tol float64, visit func(a, b int)) {
	p.VisitNonScreenedParallel(tol, 1, func(_ int, a, b int) { visit(a, b) })
}

// VisitNonScreenedParallel distributes the surviving quartets over
// `workers` team workers; visit receives the worker index so callers can
// keep per-worker accumulators. Each unordered quartet is visited exactly
// once, by exactly one worker. Rows run in descending-q order with
// dynamic chunking: early rows have far more surviving partners than
// late ones, so pulled chunks rebalance the skew.
func (p *PairList) VisitNonScreenedParallel(tol float64, workers int, visit func(worker, a, b int)) {
	if tol <= 0 {
		panic(fmt.Sprintf("hf: screening tolerance %g", tol))
	}
	workers = parallel.Workers(workers)
	// Sort pair indices by descending q so each row's partner scan can
	// stop early.
	order := make([]int, len(p.Q))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return p.Q[order[x]] > p.Q[order[y]] })
	// Rows are sorted by q descending, so survival is monotone: once a
	// row's diagonal quartet q1*q1 fails the bound, every later row is
	// dry. Binary-search the cutoff instead of streaming rows past it.
	cutoff := sort.Search(len(order), func(s int) bool {
		q := p.Q[order[s]]
		return q == 0 || q*q < tol
	})
	grain := cutoff / (workers * 16)
	if grain < 1 {
		grain = 1
	}
	parallel.ForWorker(workers, cutoff, grain, func(w, lo, hi int) {
		for s1 := lo; s1 < hi; s1++ {
			visitRow(p, order, tol, s1, w, visit)
		}
	})
}

// visitRow emits the quartets of one outer row; it reports whether the
// row had any survivors (rows are processed in descending-q order, so a
// dry diagonal means all later rows are dry too).
func visitRow(p *PairList, order []int, tol float64, s1, worker int, visit func(worker, a, b int)) bool {
	q1 := p.Q[order[s1]]
	if q1 == 0 || q1*q1 < tol {
		return false
	}
	for s2 := s1; s2 < len(order); s2++ {
		if q1*p.Q[order[s2]] < tol {
			break
		}
		visit(worker, order[s1], order[s2])
	}
	return true
}
