package hf

import "fmt"

// Shape is the geometric family of a test molecule.
type Shape int

// Geometric families of the Table V systems.
const (
	ShapeChain Shape = iota
	ShapeSheet
	ShapeHelix
	ShapeGlobule
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeSheet:
		return "sheet"
	case ShapeHelix:
		return "helix"
	case ShapeGlobule:
		return "globule"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// MoleculeSpec identifies one Table V system: the published atom and
// basis-function counts plus the geometry family that replaces the
// (unavailable) real coordinates.
type MoleculeSpec struct {
	Name      string
	Atoms     int
	Functions int
	Shape     Shape
	Seed      uint64

	// The paper's published Table V reference values for this system at
	// screening tolerance 1e-10: surviving ERI count and storage in GB.
	PaperERIs     float64
	PaperMemoryGB float64
	// Table VI reference values (seconds / iterations).
	PaperIters   int
	PaperHFComp  float64
	PaperPrecomp float64
	PaperFock    float64
	PaperDensity float64
	PaperTotal   float64
	PaperSpeedup float64
}

// TableV returns the five molecular systems of Table V with their
// published counts and the Table VI reference timings.
func TableV() []MoleculeSpec {
	return []MoleculeSpec{
		{
			Name: "alkane-842", Atoms: 842, Functions: 6730, Shape: ShapeChain, Seed: 1,
			PaperERIs: 1.87e11, PaperMemoryGB: 1391.02,
			PaperIters: 12, PaperHFComp: 3081.91, PaperPrecomp: 218.10,
			PaperFock: 23.73, PaperDensity: 34.81, PaperTotal: 1013.39, PaperSpeedup: 3.04,
		},
		{
			Name: "graphene-252", Atoms: 252, Functions: 3204, Shape: ShapeSheet, Seed: 2,
			PaperERIs: 1.76e11, PaperMemoryGB: 1308.32,
			PaperIters: 23, PaperHFComp: 4476.47, PaperPrecomp: 185.35,
			PaperFock: 20.91, PaperDensity: 6.39, PaperTotal: 837.73, PaperSpeedup: 5.34,
		},
		{
			Name: "5-mer", Atoms: 326, Functions: 3453, Shape: ShapeHelix, Seed: 3,
			PaperERIs: 2.01e11, PaperMemoryGB: 1499.06,
			PaperIters: 19, PaperHFComp: 4090.9, PaperPrecomp: 209.20,
			PaperFock: 26.77, PaperDensity: 4.84, PaperTotal: 859.63, PaperSpeedup: 4.76,
		},
		{
			Name: "1hsg-28", Atoms: 122, Functions: 1159, Shape: ShapeGlobule, Seed: 4,
			PaperERIs: 1.42e10, PaperMemoryGB: 105.95,
			PaperIters: 15, PaperHFComp: 281.61, PaperPrecomp: 18.42,
			PaperFock: 1.78, PaperDensity: 0.30, PaperTotal: 54.65, PaperSpeedup: 5.15,
		},
		{
			Name: "1hsg-38", Atoms: 387, Functions: 3555, Shape: ShapeGlobule, Seed: 5,
			PaperERIs: 2.09e11, PaperMemoryGB: 1558.66,
			PaperIters: 17, PaperHFComp: 4079.75, PaperPrecomp: 232.90,
			PaperFock: 30.63, PaperDensity: 5.80, PaperTotal: 889.76, PaperSpeedup: 4.59,
		},
	}
}

// Geometry spacing constants in Bohr: roughly carbon-carbon scale.
const (
	chainSpacing = 2.5
	sheetSpacing = 3.0
	globuleSep   = 3.5
)

// Build instantiates the molecule: synthetic geometry of the spec's shape
// with the published atom count, and the published number of basis
// functions distributed evenly over atoms.
func (s MoleculeSpec) Build() *Molecule {
	var atoms []Atom
	switch s.Shape {
	case ShapeChain:
		atoms = Chain(s.Atoms, chainSpacing)
	case ShapeSheet:
		atoms = Sheet(s.Atoms, sheetSpacing)
	case ShapeHelix:
		// A tightly coiled solenoid: ~3 Bohr along the strand, ~3.2 Bohr
		// between turns — compact like a real oligomer, unlike a
		// stretched spiral.
		atoms = Helix(s.Atoms, 12.0, 3.2, 0.26)
	case ShapeGlobule:
		atoms = Globule(s.Atoms, globuleSep, s.Seed)
	default:
		panic(fmt.Sprintf("hf: unknown shape %v", s.Shape))
	}
	return AttachBasis(s.Name, atoms, s.Functions)
}

// Scaled returns a proportionally smaller system of the same shape and
// functions-per-atom ratio, for running the full SCF at host scale. The
// returned spec keeps the paper reference values of the original so
// projections can still be compared.
func (s MoleculeSpec) Scaled(maxFunctions int) MoleculeSpec {
	if maxFunctions <= 0 {
		panic("hf: maxFunctions must be positive")
	}
	if s.Functions <= maxFunctions {
		return s
	}
	ratio := float64(maxFunctions) / float64(s.Functions)
	out := s
	out.Atoms = int(float64(s.Atoms) * ratio)
	if out.Atoms < 2 {
		out.Atoms = 2
	}
	out.Functions = maxFunctions
	if out.Functions < out.Atoms {
		out.Functions = out.Atoms
	}
	out.Name = fmt.Sprintf("%s/scaled-%d", s.Name, maxFunctions)
	return out
}
