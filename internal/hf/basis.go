// Package hf implements the Hartree-Fock application of Section V-C from
// scratch: an s-type Gaussian basis, analytic one- and two-electron
// integrals via the Boys function, Schwarz screening, Fock-matrix
// construction, and the SCF driver in both variants the paper compares —
// HF-Comp, which recomputes the electron repulsion integrals (ERIs) every
// iteration, and HF-Mem, which precomputes and stores the non-screened
// ERIs, the strategy the E870's memory capacity enables (Tables V, VI).
//
// The paper's molecules use the cc-pVDZ basis with s/p/d shells; this
// reproduction substitutes even-tempered s-type Gaussians while keeping
// each molecule's published atom and basis-function counts, which
// preserves everything the systems evaluation depends on: the quartic
// integral count, the effect of Schwarz screening, and the
// compute-versus-memory trade between the two algorithms.
package hf

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Vec3 is a position in Bohr radii.
type Vec3 struct{ X, Y, Z float64 }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Norm2 returns |a|^2.
func (a Vec3) Norm2() float64 { return a.X*a.X + a.Y*a.Y + a.Z*a.Z }

// Scale returns s*a.
func (a Vec3) Scale(s float64) Vec3 { return Vec3{s * a.X, s * a.Y, s * a.Z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Atom is a nucleus.
type Atom struct {
	Charge float64
	Pos    Vec3
}

// BasisFn is a normalized primitive s-type Gaussian
// N exp(-alpha |r - center|^2).
type BasisFn struct {
	Center Vec3
	Alpha  float64
	Norm   float64
}

// NewBasisFn returns a normalized s Gaussian.
func NewBasisFn(center Vec3, alpha float64) BasisFn {
	if alpha <= 0 {
		panic(fmt.Sprintf("hf: non-positive exponent %g", alpha))
	}
	return BasisFn{Center: center, Alpha: alpha, Norm: math.Pow(2*alpha/math.Pi, 0.75)}
}

// Molecule is a nuclear geometry plus its basis set.
type Molecule struct {
	Name  string
	Atoms []Atom
	Basis []BasisFn
}

// NumFunctions returns the basis size n_f.
func (m *Molecule) NumFunctions() int { return len(m.Basis) }

// NumElectrons returns the electron count (neutral molecule).
func (m *Molecule) NumElectrons() int {
	var z float64
	for _, a := range m.Atoms {
		z += a.Charge
	}
	return int(math.Round(z))
}

// OccupiedOrbitals returns the closed-shell occupation count; it panics
// for odd electron counts (this code is restricted Hartree-Fock only).
func (m *Molecule) OccupiedOrbitals() int {
	e := m.NumElectrons()
	if e%2 != 0 {
		panic(fmt.Sprintf("hf: %s has %d electrons; RHF needs an even count", m.Name, e))
	}
	return e / 2
}

// NuclearRepulsion returns sum over pairs of Za Zb / Rab.
func (m *Molecule) NuclearRepulsion() float64 {
	var e float64
	for i := 0; i < len(m.Atoms); i++ {
		for j := i + 1; j < len(m.Atoms); j++ {
			r := math.Sqrt(m.Atoms[i].Pos.Sub(m.Atoms[j].Pos).Norm2())
			e += m.Atoms[i].Charge * m.Atoms[j].Charge / r
		}
	}
	return e
}

// evenTempered assigns k s exponents per atom in a geometric ladder.
// The ladder spans tight to moderately diffuse functions; the base keeps
// neighbouring atoms' diffuse functions from going linearly dependent at
// typical bond lengths (~2.5-3 Bohr).
func evenTempered(k int) []float64 {
	const (
		alpha0 = 0.11
		beta   = 2.3
	)
	out := make([]float64, k)
	a := alpha0
	for i := 0; i < k; i++ {
		out[i] = a
		a *= beta
	}
	return out
}

// AttachBasis builds the basis: functions are distributed as evenly as
// possible over atoms until total functions are assigned.
func AttachBasis(name string, atoms []Atom, functions int) *Molecule {
	if len(atoms) == 0 || functions < len(atoms) {
		panic(fmt.Sprintf("hf: %d functions for %d atoms", functions, len(atoms)))
	}
	m := &Molecule{Name: name, Atoms: atoms}
	base := functions / len(atoms)
	extra := functions % len(atoms)
	for i, at := range atoms {
		k := base
		if i < extra {
			k++
		}
		for _, alpha := range evenTempered(k) {
			m.Basis = append(m.Basis, NewBasisFn(at.Pos, alpha))
		}
	}
	return m
}

// Geometry builders for the Table V molecule shapes. All distances in
// Bohr; charges are +2 per atom so every system is closed shell with one
// occupied orbital per atom.

const atomCharge = 2.0

// Chain builds a zigzag chain (the alkane backbone shape).
func Chain(n int, spacing float64) []Atom {
	atoms := make([]Atom, n)
	for i := range atoms {
		atoms[i] = Atom{Charge: atomCharge, Pos: Vec3{
			X: float64(i) * spacing,
			Y: 0.45 * spacing * float64(i%2),
		}}
	}
	return atoms
}

// Sheet builds a planar hexagonal-ish lattice (the graphene shape).
func Sheet(n int, spacing float64) []Atom {
	atoms := make([]Atom, 0, n)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	for r := 0; len(atoms) < n; r++ {
		for c := 0; c < side && len(atoms) < n; c++ {
			x := float64(c) * spacing
			if r%2 == 1 {
				x += spacing / 2
			}
			atoms = append(atoms, Atom{Charge: atomCharge, Pos: Vec3{
				X: x, Y: float64(r) * spacing * 0.87,
			}})
		}
	}
	return atoms
}

// Helix builds a helical arrangement (the DNA 5-mer shape).
func Helix(n int, radius, pitch, step float64) []Atom {
	atoms := make([]Atom, n)
	for i := range atoms {
		theta := float64(i) * step
		atoms[i] = Atom{Charge: atomCharge, Pos: Vec3{
			X: radius * math.Cos(theta),
			Y: radius * math.Sin(theta),
			Z: pitch * theta / (2 * math.Pi),
		}}
	}
	return atoms
}

// Globule builds a packed ball of atoms with a minimum separation (the
// truncated protein-ligand shape), deterministically from seed.
func Globule(n int, minSep float64, seed uint64) []Atom {
	r := rng.New(seed)
	radius := minSep * math.Cbrt(float64(n)) * 0.8
	atoms := make([]Atom, 0, n)
	fails := 0
	for len(atoms) < n {
		p := Vec3{
			X: (2*r.Float64() - 1) * radius,
			Y: (2*r.Float64() - 1) * radius,
			Z: (2*r.Float64() - 1) * radius,
		}
		if p.Norm2() > radius*radius {
			continue
		}
		ok := true
		for _, a := range atoms {
			if a.Pos.Sub(p).Norm2() < minSep*minSep {
				ok = false
				break
			}
		}
		if !ok {
			// Random sequential packing can jam; relax the ball.
			if fails++; fails > 2000 {
				radius *= 1.05
				fails = 0
			}
			continue
		}
		fails = 0
		atoms = append(atoms, Atom{Charge: atomCharge, Pos: p})
	}
	return atoms
}
