package hf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoysF0Limits(t *testing.T) {
	if got := BoysF0(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("F0(0) = %v, want 1", got)
	}
	// Small-t expansion: 1 - t/3 + t^2/10 ...
	if got := BoysF0(1e-14); math.Abs(got-1) > 1e-12 {
		t.Errorf("F0(eps) = %v", got)
	}
	// Large t: F0 ~ sqrt(pi/t)/2.
	tBig := 100.0
	want := 0.5 * math.Sqrt(math.Pi/tBig)
	if got := BoysF0(tBig); math.Abs(got-want) > 1e-12 {
		t.Errorf("F0(100) = %v, want %v", got, want)
	}
}

func TestBoysF0Monotone(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if x > y {
			x, y = y, x
		}
		return BoysF0(x) >= BoysF0(y)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedSelfOverlap(t *testing.T) {
	for _, alpha := range []float64{0.1, 1.0, 7.5} {
		b := NewBasisFn(Vec3{}, alpha)
		if got := Overlap(b, b); math.Abs(got-1) > 1e-12 {
			t.Errorf("alpha=%v: <a|a> = %v, want 1", alpha, got)
		}
	}
}

func TestOverlapDecaysWithDistance(t *testing.T) {
	a := NewBasisFn(Vec3{}, 1)
	prev := 1.0
	for _, r := range []float64{0.5, 1, 2, 4, 8} {
		b := NewBasisFn(Vec3{X: r}, 1)
		got := Overlap(a, b)
		if got <= 0 || got >= prev {
			t.Errorf("overlap at r=%v is %v, want decaying positive", r, got)
		}
		prev = got
	}
}

// TestKineticHydrogenLike: for a single s Gaussian with exponent alpha,
// <T> = 3 alpha / 2.
func TestKineticSingleGaussian(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.3} {
		b := NewBasisFn(Vec3{}, alpha)
		if got := Kinetic(b, b); math.Abs(got-1.5*alpha) > 1e-12 {
			t.Errorf("alpha=%v: <T> = %v, want %v", alpha, got, 1.5*alpha)
		}
	}
}

// TestNuclearSingleGaussian: <V> for a normalized s Gaussian centred on a
// charge Z is -Z * 2 sqrt(2 alpha / pi).
func TestNuclearSingleGaussian(t *testing.T) {
	alpha := 0.8
	b := NewBasisFn(Vec3{}, alpha)
	atoms := []Atom{{Charge: 3, Pos: Vec3{}}}
	want := -3 * 2 * math.Sqrt(2*alpha/math.Pi)
	if got := NuclearAttraction(b, b, atoms); math.Abs(got-want) > 1e-10 {
		t.Errorf("<V> = %v, want %v", got, want)
	}
}

// TestERISelfRepulsion: (aa|aa) for a normalized s Gaussian is
// sqrt(2 alpha / pi) * 2 ... specifically 2 sqrt(alpha) sqrt(2/pi) / ...
// use the known closed form sqrt(4 alpha / pi) * ... verified against
// the hydrogenic value: for alpha, (aa|aa) = sqrt(2 alpha/pi) * 2/sqrt(2)
// — rather than rely on transcription, verify via the formula's own
// internal consistency: doubling alpha scales (aa|aa) by sqrt(2).
func TestERIScaling(t *testing.T) {
	a1 := NewBasisFn(Vec3{}, 1)
	a2 := NewBasisFn(Vec3{}, 2)
	r1 := ERI(a1, a1, a1, a1)
	r2 := ERI(a2, a2, a2, a2)
	if r1 <= 0 || r2 <= 0 {
		t.Fatal("self-repulsion not positive")
	}
	if math.Abs(r2/r1-math.Sqrt2) > 1e-10 {
		t.Errorf("(aa|aa) scaling = %v, want sqrt(2)", r2/r1)
	}
}

// TestERIPermutationSymmetry: the 8-fold symmetry of real integrals.
func TestERIPermutationSymmetry(t *testing.T) {
	a := NewBasisFn(Vec3{X: 0.1}, 0.6)
	b := NewBasisFn(Vec3{Y: 0.9}, 1.4)
	c := NewBasisFn(Vec3{Z: -0.7}, 0.9)
	d := NewBasisFn(Vec3{X: -1.1, Y: 0.3}, 2.2)
	ref := ERI(a, b, c, d)
	perms := []float64{
		ERI(b, a, c, d), ERI(a, b, d, c), ERI(b, a, d, c),
		ERI(c, d, a, b), ERI(d, c, a, b), ERI(c, d, b, a), ERI(d, c, b, a),
	}
	for i, v := range perms {
		if math.Abs(v-ref) > 1e-12 {
			t.Errorf("permutation %d: %v != %v", i, v, ref)
		}
	}
}

// TestSchwarzBoundHolds: |(ij|kl)| <= sqrt((ij|ij)(kl|kl)) on random
// quartets.
func TestSchwarzBoundHolds(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 4, Functions: 12, Shape: ShapeChain}.Build()
	n := mol.NumFunctions()
	for i := 0; i < n; i += 2 {
		for j := 0; j <= i; j += 3 {
			for k := 0; k < n; k += 4 {
				for l := 0; l <= k; l += 2 {
					v := math.Abs(ERI(mol.Basis[i], mol.Basis[j], mol.Basis[k], mol.Basis[l]))
					qij := math.Sqrt(ERI(mol.Basis[i], mol.Basis[j], mol.Basis[i], mol.Basis[j]))
					qkl := math.Sqrt(ERI(mol.Basis[k], mol.Basis[l], mol.Basis[k], mol.Basis[l]))
					if v > qij*qkl+1e-12 {
						t.Fatalf("Schwarz violated at (%d%d|%d%d): %v > %v", i, j, k, l, v, qij*qkl)
					}
				}
			}
		}
	}
}

func TestOverlapMatrixSPD(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 3, Functions: 9, Shape: ShapeChain}.Build()
	s := mol.OverlapMatrix()
	if s.SymmetryError() > 1e-14 {
		t.Error("S not symmetric")
	}
	for i := 0; i < s.N; i++ {
		if math.Abs(s.At(i, i)-1) > 1e-12 {
			t.Errorf("S[%d,%d] = %v, want 1 (normalized basis)", i, i, s.At(i, i))
		}
	}
}

func TestCoreHamiltonianSymmetric(t *testing.T) {
	mol := MoleculeSpec{Name: "t", Atoms: 3, Functions: 6, Shape: ShapeChain}.Build()
	h := mol.CoreHamiltonian()
	if h.SymmetryError() > 1e-12 {
		t.Error("H not symmetric")
	}
	// Diagonal should be negative: attraction dominates for bound
	// electrons in a reasonable basis.
	neg := 0
	for i := 0; i < h.N; i++ {
		if h.At(i, i) < 0 {
			neg++
		}
	}
	if neg < h.N/2 {
		t.Errorf("only %d of %d diagonal H elements negative", neg, h.N)
	}
}
