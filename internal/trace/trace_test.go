package trace

import (
	"testing"
	"testing/quick"
)

func TestSequential(t *testing.T) {
	g := NewSequential(1024, 4)
	want := []uint64{1024, 1152, 1280, 1408}
	got := Collect(g, 0)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if _, ok := g.Next(); ok {
		t.Error("exhausted generator returned ok")
	}
	g.Reset()
	if a, ok := g.Next(); !ok || a != 1024 {
		t.Error("Reset did not restart")
	}
}

func TestStrided(t *testing.T) {
	g := NewStrided(0, 256, 3)
	got := Collect(g, 0)
	want := []uint64{0, 256 * LineSize, 512 * LineSize}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestChaseVisitsEveryLineOncePerLap(t *testing.T) {
	const lines = 257
	g := NewChase(0, lines, 2, 7)
	seen := map[uint64]int{}
	for {
		addr, ok := g.Next()
		if !ok {
			break
		}
		if addr%LineSize != 0 {
			t.Fatalf("unaligned address %d", addr)
		}
		seen[addr]++
	}
	if len(seen) != lines {
		t.Fatalf("visited %d distinct lines, want %d", len(seen), lines)
	}
	for addr, n := range seen {
		if n != 2 {
			t.Fatalf("line %d visited %d times, want 2 (laps)", addr, n)
		}
	}
}

func TestChaseIsSingleCycle(t *testing.T) {
	// Property: for any size and seed, the chase returns to its start
	// exactly after visiting all lines — Sattolo guarantees one cycle.
	f := func(seed uint64, sz uint8) bool {
		lines := int(sz)%500 + 2
		g := NewChase(0, lines, 1, seed)
		first, _ := g.Next()
		count := 1
		for {
			addr, ok := g.Next()
			if !ok {
				break
			}
			if addr == first && count < lines {
				return false // premature cycle
			}
			count++
		}
		return count == lines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChaseDeterministic(t *testing.T) {
	a := Collect(NewChase(0, 100, 1, 9), 0)
	b := Collect(NewChase(0, 100, 1, 9), 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different chases")
		}
	}
}

func TestChaseWorkingSet(t *testing.T) {
	g := NewChase(0, 1024, 1, 1)
	if got := int64(g.WorkingSet()); got != 1024*LineSize {
		t.Errorf("working set = %d", got)
	}
}

func TestBlockedRandomCoversAll(t *testing.T) {
	const blocks, blockLines = 16, 8
	g := NewBlockedRandom(0, blocks, blockLines, 3)
	seen := map[uint64]bool{}
	var prevBlock int64 = -1
	pos := 0
	for {
		atStart := g.BlockStart()
		addr, ok := g.Next()
		if !ok {
			break
		}
		if wantStart := pos%blockLines == 0; atStart != wantStart {
			t.Fatalf("BlockStart = %v at access %d, want %v", atStart, pos, wantStart)
		}
		seen[addr] = true
		block := int64(addr / (blockLines * LineSize))
		if pos%blockLines == 0 {
			prevBlock = block
		} else if block != prevBlock {
			t.Fatalf("access %d crossed block boundary mid-block", pos)
		}
		pos++
	}
	if len(seen) != blocks*blockLines {
		t.Errorf("covered %d lines, want %d", len(seen), blocks*blockLines)
	}
}

func TestBlockedRandomSequentialWithinBlock(t *testing.T) {
	g := NewBlockedRandom(0, 4, 4, 11)
	addrs := Collect(g, 0)
	for i := 0; i < len(addrs); i += 4 {
		for j := 1; j < 4; j++ {
			if addrs[i+j] != addrs[i+j-1]+LineSize {
				t.Fatalf("block starting at %d not sequential", i)
			}
		}
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	g := NewInterleave(
		NewSequential(0, 2),
		NewSequential(1<<20, 3),
	)
	got := Collect(g, 0)
	want := []uint64{0, 1 << 20, LineSize, 1<<20 + LineSize, 1<<20 + 2*LineSize}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
			break
		}
	}
	g.Reset()
	if a, ok := g.Next(); !ok || a != 0 {
		t.Error("Reset failed")
	}
}

func TestCollectMax(t *testing.T) {
	g := NewSequential(0, 100)
	if got := Collect(g, 7); len(got) != 7 {
		t.Errorf("Collect max = %d addrs", len(got))
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewChase(0, 1, 1, 1) },
		func() { NewStrided(0, 0, 5) },
		func() { NewBlockedRandom(0, 0, 4, 1) },
		func() { NewBlockedRandom(0, 4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
