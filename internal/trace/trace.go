// Package trace generates the synthetic memory-access patterns the
// microbenchmarks in the paper are built from: sequential streams, strided
// streams, random pointer chases (lmbench's dependent-load pattern),
// randomly-ordered blocks scanned sequentially (the DCBT experiment), and
// interleaved multi-stream traffic.
//
// A generator yields physical line addresses; the consuming simulator is
// responsible for translation and hierarchy behaviour. Addresses are plain
// uint64 byte addresses aligned to the line size.
package trace

import (
	"repro/internal/rng"
	"repro/internal/units"
)

// LineSize is the fixed 128-byte POWER8 cache line.
const LineSize = 128

// Generator yields a sequence of byte addresses. Next reports ok=false
// when the sequence is exhausted; Reset restarts it from the beginning,
// reproducing the identical sequence.
type Generator interface {
	Next() (addr uint64, ok bool)
	Reset()
}

// Sequential walks n lines starting at base, one line at a time.
type Sequential struct {
	Base  uint64
	Lines int
	pos   int
}

// NewSequential returns a sequential walk of n lines from base.
func NewSequential(base uint64, n int) *Sequential {
	return &Sequential{Base: base, Lines: n}
}

// Next implements Generator.
func (s *Sequential) Next() (uint64, bool) {
	if s.pos >= s.Lines {
		return 0, false
	}
	addr := s.Base + uint64(s.pos)*LineSize
	s.pos++
	return addr, true
}

// Reset implements Generator.
func (s *Sequential) Reset() { s.pos = 0 }

// Strided accesses every stride-th line: n accesses at base, base +
// stride*LineSize, ... This is the "stride-N stream" pattern of Figure 7.
type Strided struct {
	Base        uint64
	StrideLines int
	Count       int
	pos         int
}

// NewStrided returns a strided walk: count accesses, stride lines apart.
func NewStrided(base uint64, strideLines, count int) *Strided {
	if strideLines <= 0 {
		panic("trace: stride must be positive")
	}
	return &Strided{Base: base, StrideLines: strideLines, Count: count}
}

// Next implements Generator.
func (s *Strided) Next() (uint64, bool) {
	if s.pos >= s.Count {
		return 0, false
	}
	addr := s.Base + uint64(s.pos)*uint64(s.StrideLines)*LineSize
	s.pos++
	return addr, true
}

// Reset implements Generator.
func (s *Strided) Reset() { s.pos = 0 }

// Chase is a random pointer chase: a single cycle visiting every line of
// the working set exactly once per lap, in a fixed random order (Sattolo's
// algorithm guarantees one cycle). Each access depends on the previous
// one, which is what makes it a latency — not bandwidth — benchmark.
type Chase struct {
	base  uint64
	next  []int32 // next[i] = index of the line after line i
	start int
	cur   int
	laps  int
	lap   int
	step  int
}

// NewChase builds a pointer chase over lines cache lines starting at base,
// visiting each once per lap for laps laps, in a random cyclic order drawn
// from seed.
func NewChase(base uint64, lines, laps int, seed uint64) *Chase {
	if lines < 2 {
		panic("trace: chase needs at least two lines")
	}
	perm := make([]int32, lines)
	for i := range perm {
		perm[i] = int32(i)
	}
	r := rng.New(seed)
	// Sattolo's algorithm: a uniformly random single-cycle permutation.
	for i := lines - 1; i > 0; i-- {
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]int32, lines)
	for i := 0; i < lines; i++ {
		next[i] = perm[i]
	}
	return &Chase{base: base, next: next, laps: laps}
}

// WorkingSet returns the size of the chased region.
func (c *Chase) WorkingSet() units.Bytes {
	return units.Bytes(len(c.next)) * LineSize
}

// Next implements Generator.
func (c *Chase) Next() (uint64, bool) {
	if c.lap >= c.laps {
		return 0, false
	}
	addr := c.base + uint64(c.cur)*LineSize
	c.cur = int(c.next[c.cur])
	c.step++
	if c.step == len(c.next) {
		c.step = 0
		c.lap++
	}
	return addr, true
}

// Reset implements Generator.
func (c *Chase) Reset() { c.cur = c.start; c.lap = 0; c.step = 0 }

// BlockedRandom divides a region into blocks of blockLines lines, visits
// the blocks in a fixed random order, and scans each block sequentially —
// the access pattern of the DCBT experiment (Figure 8): long enough runs
// for a prefetcher to engage, but only after it re-detects each block.
type BlockedRandom struct {
	base       uint64
	blockLines int
	order      []int32
	blockIdx   int
	line       int
}

// NewBlockedRandom builds the pattern over blocks*blockLines lines.
func NewBlockedRandom(base uint64, blocks, blockLines int, seed uint64) *BlockedRandom {
	if blocks <= 0 || blockLines <= 0 {
		panic("trace: blocks and blockLines must be positive")
	}
	order := make([]int32, blocks)
	for i := range order {
		order[i] = int32(i)
	}
	r := rng.New(seed)
	r.Shuffle(blocks, func(i, j int) { order[i], order[j] = order[j], order[i] })
	return &BlockedRandom{base: base, blockLines: blockLines, order: order}
}

// Next implements Generator.
func (b *BlockedRandom) Next() (uint64, bool) {
	if b.blockIdx >= len(b.order) {
		return 0, false
	}
	block := uint64(b.order[b.blockIdx])
	addr := b.base + (block*uint64(b.blockLines)+uint64(b.line))*LineSize
	b.line++
	if b.line == b.blockLines {
		b.line = 0
		b.blockIdx++
	}
	return addr, true
}

// Reset implements Generator.
func (b *BlockedRandom) Reset() { b.blockIdx = 0; b.line = 0 }

// BlockStart reports whether the next access begins a new block; the DCBT
// microbenchmark issues its software-prefetch hint at block starts.
func (b *BlockedRandom) BlockStart() bool { return b.line == 0 && b.blockIdx < len(b.order) }

// Interleave round-robins between several generators, modelling
// independent concurrent streams observed by a shared resource. A drained
// generator drops out of the rotation.
type Interleave struct {
	gens []Generator
	pos  int
	live []bool
	left int
}

// NewInterleave combines gens round-robin.
func NewInterleave(gens ...Generator) *Interleave {
	live := make([]bool, len(gens))
	for i := range live {
		live[i] = true
	}
	return &Interleave{gens: gens, live: live, left: len(gens)}
}

// Next implements Generator.
func (iv *Interleave) Next() (uint64, bool) {
	for iv.left > 0 {
		i := iv.pos
		iv.pos = (iv.pos + 1) % len(iv.gens)
		if !iv.live[i] {
			continue
		}
		if addr, ok := iv.gens[i].Next(); ok {
			return addr, true
		}
		iv.live[i] = false
		iv.left--
	}
	return 0, false
}

// Reset implements Generator.
func (iv *Interleave) Reset() {
	for i, g := range iv.gens {
		g.Reset()
		iv.live[i] = true
	}
	iv.left = len(iv.gens)
	iv.pos = 0
}

// Collect drains up to max addresses from g (all of them if max <= 0).
func Collect(g Generator, max int) []uint64 {
	var out []uint64
	for {
		addr, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, addr)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}
