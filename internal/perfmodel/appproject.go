package perfmodel

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/units"
)

// JaccardPoint is one projected sample of Figure 10.
type JaccardPoint struct {
	Scale     int
	Vertices  int
	Ops       float64 // two-hop expansion operations, sum over u of d(u)^2
	Pairs     float64 // estimated distinct similar pairs
	TimeSec   float64
	Footprint units.Bytes // input CSR + output pairs
}

// JaccardModel holds the Figure 10 projection constants.
type JaccardModel struct {
	// ThreadsPerCore: the paper runs one thread per core.
	ThreadsPerCore int
	// BytesPerOp: sequential neighbour-list bytes streamed per two-hop
	// operation (one int32 id plus amortized structure overhead).
	BytesPerOp float64
	// The distinct-pairs-per-operation ratio follows a clean geometric
	// law in the R-MAT scale (measured 0.051 at scale 10 growing 1.138x
	// per scale on seeds 1-4; see the perfmodel tests), capped at
	// DedupCap as a pair can only be counted once however sparse the
	// collisions get.
	DedupBase   float64
	DedupGrowth float64
	BaseScale   int
	DedupCap    float64
}

// DefaultJaccardModel returns the Figure 10 constants.
func DefaultJaccardModel() JaccardModel {
	return JaccardModel{
		ThreadsPerCore: 1, BytesPerOp: 6,
		DedupBase: 0.051, DedupGrowth: 1.138, BaseScale: 10, DedupCap: 0.6,
	}
}

// DedupAt returns the modelled distinct-pairs-per-operation ratio at an
// R-MAT scale.
func (jm JaccardModel) DedupAt(scale int) float64 {
	r := jm.DedupBase
	for s := jm.BaseScale; s < scale; s++ {
		r *= jm.DedupGrowth
	}
	for s := scale; s < jm.BaseScale; s++ {
		r /= jm.DedupGrowth
	}
	if r > jm.DedupCap {
		r = jm.DedupCap
	}
	return r
}

// ProjectJaccard projects the all-pairs Jaccard run for one R-MAT scale
// on the modelled machine: operation counts come from the actual R-MAT
// degree sequence (streamed, not stored); time is the streamed traffic
// over the bandwidth the configured thread count sustains; the footprint
// is the input CSR plus the emitted pairs.
func ProjectJaccard(m *machine.Machine, jm JaccardModel, scale int, seed uint64) JaccardPoint {
	cfg := graph.DefaultRMAT(scale, seed)
	cfg.EdgeFactor = 8 // mirrored to average degree 16, as in the paper
	deg, err := graph.RMATDegrees(cfg)
	if err != nil {
		// DefaultRMAT configurations are valid by construction; an error
		// here is a programming bug, same contract as graph.RMAT.
		panic(err)
	}
	var ops, edges float64
	for _, d := range deg {
		ops += float64(d) * float64(d)
		edges += float64(d)
	}
	threads := jm.ThreadsPerCore * m.Spec.TotalCores()
	// Each core runs ThreadsPerCore threads; its sequential rate divided
	// over them is one thread's share.
	perThread := float64(m.Mem.CoreStream(jm.ThreadsPerCore)) / float64(jm.ThreadsPerCore)
	sysBW := perThread * float64(threads)
	if limit := float64(m.Mem.StreamBandwidth(1, m.Spec.Topology.Chips)); sysBW > limit {
		sysBW = limit
	}
	pairs := ops * jm.DedupAt(scale)
	outBytes := pairs * 16
	scanBytes := ops * jm.BytesPerOp
	// Output emission writes at the write-link bound.
	writeBW := float64(m.Mem.StreamBandwidth(0, m.Spec.Topology.Chips))
	t := scanBytes/sysBW + outBytes/writeBW
	input := edges*12 + float64(len(deg)+1)*8
	return JaccardPoint{
		Scale:     scale,
		Vertices:  cfg.Vertices(),
		Ops:       ops,
		Pairs:     pairs,
		TimeSec:   t,
		Footprint: units.Bytes(outBytes + input),
	}
}

// TwoScanPoint is one projected sample of Figure 12.
type TwoScanPoint struct {
	Scale       int
	GFLOPs      float64
	AvgBlockNNZ float64
}

// TwoScanModel holds the Figure 12 projection constants.
type TwoScanModel struct {
	// BlockBits: log2 of the stripe size in vertices; 16 reproduces the
	// paper's scale-31 block population (~63 elements, about four cache
	// lines), the mechanism behind Figure 12's decline.
	BlockBits int
	// ReadBytesPerNNZ / WriteBytesPerNNZ: streamed traffic of the two
	// scans per nonzero (paper: "for each nonzero we read 10 and write 8
	// bytes" in the first scan; the second reads the scaled values and
	// row ids back).
	ReadBytesPerNNZ  float64
	WriteBytesPerNNZ float64
	// OverheadLines: per-block prefetch ramp cost in cache lines; blocks
	// shorter than this lose most of their streaming efficiency even
	// with DCBT hints (Figure 12's declining tail).
	OverheadLines float64
}

// DefaultTwoScanModel returns the Figure 12 constants: 2^16-wide
// stripes reproduce the paper's scale-31 block population (~4 cache
// lines), and the 11-line overhead is one block-start dependent access
// (~130 ns) expressed in per-line stream times (~11.6 ns).
func DefaultTwoScanModel() TwoScanModel {
	return TwoScanModel{BlockBits: 16, ReadBytesPerNNZ: 24, WriteBytesPerNNZ: 10, OverheadLines: 11}
}

// ProjectTwoScan projects the graph SpMV rate at one R-MAT scale using
// the analytic block-occupancy model: streamed traffic through the mixed
// read/write bandwidth, derated by the per-block prefetch-ramp
// efficiency as blocks empty out at large scales.
func ProjectTwoScan(m *machine.Machine, tm TwoScanModel, scale int) TwoScanPoint {
	cfg := graph.DefaultRMAT(scale, 1)
	gridBits := scale - tm.BlockBits
	if gridBits < 0 {
		gridBits = 0
	}
	st := RMATBlockStats(cfg, gridBits)
	bytesPerNNZ := tm.ReadBytesPerNNZ + tm.WriteBytesPerNNZ
	f := tm.ReadBytesPerNNZ / bytesPerNNZ
	bw := float64(m.Mem.StreamBandwidth(f, m.Spec.Topology.Chips))
	// Block streaming efficiency: a block of L cache lines pays a ramp
	// of OverheadLines before the prefetcher (even DCBT-hinted) streams.
	lines := st.AvgPerBlock * bytesPerNNZ / 2 / 128 // per-scan block footprint
	if lines < 1 {
		lines = 1
	}
	eff := lines / (lines + tm.OverheadLines)
	gflops := 2 * bw * eff / bytesPerNNZ / 1e9
	return TwoScanPoint{Scale: scale, GFLOPs: gflops, AvgBlockNNZ: st.AvgPerBlock}
}

// CSRPoint is one projected bar of Figure 11.
type CSRPoint struct {
	Name   string
	GFLOPs float64
}

// CSRModel holds the Figure 11 projection constants.
type CSRModel struct {
	// SyncOverheadSec: per-SpMV parallel launch/barrier cost; it is what
	// keeps small matrices below the Dense reference.
	SyncOverheadSec float64
	// KindEfficiency derates the streaming bandwidth for matrix kinds
	// whose x accesses defeat the prefetcher.
	KindEfficiency map[graph.MatrixKind]float64
}

// DefaultCSRModel returns the Figure 11 constants.
func DefaultCSRModel() CSRModel {
	return CSRModel{
		SyncOverheadSec: 25e-6,
		KindEfficiency: map[graph.MatrixKind]float64{
			graph.KindDense:    1.0,
			graph.KindBanded:   0.95,
			graph.KindBlocked:  0.95,
			graph.KindRandom:   0.85,
			graph.KindPowerLaw: 0.70,
		},
	}
}

// ProjectCSR projects one matrix's CSR SpMV rate on the machine: 12
// bytes per nonzero (value + column index) plus row-amortized vector and
// row-pointer traffic, through the mostly-read bandwidth bound. The
// input vector is replicated per socket as in the paper and fits every
// suite matrix's x in the chip-level caches, which is why most matrices
// track Dense (the paper's Figure 11 observation).
func ProjectCSR(m *machine.Machine, cm CSRModel, p graph.MatrixProfile) CSRPoint {
	if p.N <= 0 || p.NNZ <= 0 {
		panic(fmt.Sprintf("perfmodel: bad profile %+v", p))
	}
	perRow := float64(p.NNZ) / float64(p.N)
	bytesPerNNZ := 12.0 + (8.0+8.0)/perRow // y write + row pointer per row
	readBytes := float64(p.NNZ) * (12 + 8/perRow)
	writeBytes := float64(p.N) * 8
	f := readBytes / (readBytes + writeBytes)
	bw := float64(m.Mem.StreamBandwidth(f, m.Spec.Topology.Chips))
	if eff, ok := cm.KindEfficiency[p.Kind]; ok {
		bw *= eff
	}
	t := float64(p.NNZ)*bytesPerNNZ/bw + cm.SyncOverheadSec
	return CSRPoint{Name: p.Name, GFLOPs: 2 * float64(p.NNZ) / t / 1e9}
}
