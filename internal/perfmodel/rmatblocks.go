package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// BlockStats describes the expected 2D-block occupancy of an R-MAT
// adjacency matrix: how many of the grid's blocks hold at least one
// nonzero and the mean nonzeros per occupied block. This is the quantity
// the paper uses to explain Figure 12's decline (R-MAT 24: ~12,000
// elements per block; R-MAT 31: ~63, about four cache lines).
type BlockStats struct {
	GridBits      int     // the grid is 2^GridBits x 2^GridBits blocks
	ExpectedNNZ   float64 // generated edges
	OccupiedCells float64 // expected blocks with >= 1 element
	AvgPerBlock   float64 // ExpectedNNZ / OccupiedCells
}

// RMATBlockStats computes the exact expected block occupancy
// analytically, without generating the graph. An R-MAT edge chooses a
// quadrant per bit; a block of the 2^d x 2^d grid is reached with
// probability a^i b^j c^k d^l where (i,j,k,l) counts the quadrant choices
// over the first d bits, and multinomial(d; i,j,k,l) blocks share each
// probability. With m independent edges, a block is occupied with
// probability 1 - (1-p)^m. The composition sum has O(d^3) terms, so even
// scale-31 grids are instant — this is how the model reaches the scales
// the paper ran on 4 TB of memory.
func RMATBlockStats(cfg graph.RMATConfig, gridBits int) BlockStats {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if gridBits < 0 || gridBits > cfg.Scale {
		panic(fmt.Sprintf("perfmodel: gridBits %d out of [0, %d]", gridBits, cfg.Scale))
	}
	m := float64(cfg.Edges())
	st := BlockStats{GridBits: gridBits, ExpectedNNZ: m}
	d := gridBits
	// Iterate compositions i+j+k+l = d with multinomial counts via
	// logarithms (the counts overflow int64 for d ~ 30).
	lf := logFactorials(d)
	for i := 0; i <= d; i++ {
		for j := 0; j <= d-i; j++ {
			for k := 0; k <= d-i-j; k++ {
				l := d - i - j - k
				logCells := lf[d] - lf[i] - lf[j] - lf[k] - lf[l]
				logP, dead := 0.0, false
				for _, t := range [4]struct {
					prob  float64
					count int
				}{{cfg.A, i}, {cfg.B, j}, {cfg.C, k}, {cfg.D, l}} {
					if t.count == 0 {
						continue
					}
					if t.prob == 0 {
						dead = true
						break
					}
					logP += float64(t.count) * math.Log(t.prob)
				}
				if dead {
					continue
				}
				p := math.Exp(logP)
				st.OccupiedCells += math.Exp(logCells) * occupiedProb(p, m)
			}
		}
	}
	if st.OccupiedCells > 0 {
		st.AvgPerBlock = m / st.OccupiedCells
	}
	return st
}

// occupiedProb returns 1 - (1-p)^m stably for tiny p and huge m.
func occupiedProb(p, m float64) float64 {
	if p >= 1 {
		return 1
	}
	// (1-p)^m = exp(m log(1-p)); log1p keeps precision for small p.
	return 1 - math.Exp(m*math.Log1p(-p))
}

func logFactorials(n int) []float64 {
	lf := make([]float64, n+1)
	for i := 2; i <= n; i++ {
		lf[i] = lf[i-1] + math.Log(float64(i))
	}
	return lf
}
