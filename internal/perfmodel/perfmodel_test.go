package perfmodel

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/hf"
	"repro/internal/jaccard"
	"repro/internal/machine"
	"repro/internal/stats"
)

func e870() *machine.Machine { return machine.New(arch.E870()) }

// TestTableVICrossValidation is the central Table VI check: calibrate the
// four stage costs on alkane-842 alone, then predict the other four
// molecules' rows and compare against the paper. The single-constant
// cost model must land within 20% on HF-Comp/Fock/Precomp and within a
// factor ~2 on the (sub-second to seconds) Density column.
func TestTableVICrossValidation(t *testing.T) {
	rows := ProjectTableVI(0)
	specs := hf.TableV()
	if rows[0].Molecule != "alkane-842" {
		t.Fatal("anchor row missing")
	}
	// The anchor reproduces itself nearly exactly.
	a := rows[0]
	s0 := specs[0]
	if !stats.Within(a.HFComp, s0.PaperHFComp, 0.01) ||
		!stats.Within(a.Precomp, s0.PaperPrecomp, 0.01) ||
		!stats.Within(a.Total, s0.PaperTotal, 0.02) {
		t.Errorf("anchor not reproduced: %+v", a)
	}
	for i := 1; i < len(rows); i++ {
		r, s := rows[i], specs[i]
		if !stats.Within(r.HFComp, s.PaperHFComp, 0.30) {
			t.Errorf("%s: HF-Comp %.0f s, paper %.0f (off > 30%%)", s.Name, r.HFComp, s.PaperHFComp)
		}
		if !stats.Within(r.Precomp, s.PaperPrecomp, 0.20) {
			t.Errorf("%s: Precomp %.0f s, paper %.0f", s.Name, r.Precomp, s.PaperPrecomp)
		}
		if !stats.Within(r.Fock, s.PaperFock, 0.20) {
			t.Errorf("%s: Fock %.1f s, paper %.1f", s.Name, r.Fock, s.PaperFock)
		}
		if r.Density < s.PaperDensity/2.5 || r.Density > s.PaperDensity*2.5 {
			t.Errorf("%s: Density %.1f s, paper %.1f", s.Name, r.Density, s.PaperDensity)
		}
		if !stats.Within(r.Total, s.PaperTotal, 0.25) {
			t.Errorf("%s: HF-Mem total %.0f s, paper %.0f", s.Name, r.Total, s.PaperTotal)
		}
		// The paper's headline: HF-Mem is ~3-5.5x faster. The projected
		// speedup is a ratio of two predictions, so allow compounded
		// error while requiring the qualitative conclusion.
		if r.Speedup < 2.5 || r.Speedup > 7 {
			t.Errorf("%s: speedup %.2f outside the paper's band", s.Name, r.Speedup)
		}
	}
}

func TestHFMemAlwaysWins(t *testing.T) {
	for _, r := range ProjectTableVI(0) {
		if r.Total >= r.HFComp {
			t.Errorf("%s: HF-Mem (%.0f s) not faster than HF-Comp (%.0f s)", r.Molecule, r.Total, r.HFComp)
		}
	}
}

func TestProjectHFPanics(t *testing.T) {
	c := CalibrateHF(hf.TableV()[0])
	for _, fn := range []func(){
		func() { ProjectHF(c, "x", 0, 10, 10) },
		func() { ProjectHF(c, "x", 1e10, 0, 10) },
		func() { ProjectHF(c, "x", 1e10, 10, 0) },
		func() { ProjectTableVI(9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestRMATBlockStatsAgainstGenerated validates the analytic occupancy
// against a real generated graph at host scale.
func TestRMATBlockStatsAgainstGenerated(t *testing.T) {
	cfg := graph.DefaultRMAT(14, 3)
	const blockBits = 9 // 32x32 grid
	st := RMATBlockStats(cfg, cfg.Scale-blockBits)
	m := graph.RMAT(cfg)
	// Count actually occupied blocks (dedup makes the real graph
	// slightly sparser than the multigraph model).
	occupied := map[[2]int32]bool{}
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			occupied[[2]int32{int32(i >> blockBits), j >> blockBits}] = true
		}
	}
	got := float64(len(occupied))
	if !stats.Within(got, st.OccupiedCells, 0.12) {
		t.Errorf("occupied blocks: real %v, analytic %v", got, st.OccupiedCells)
	}
}

// TestRMATBlockStatsPaperAnchors reproduces the paper's block-population
// observations: R-MAT 24 has ~12,000 elements per block and R-MAT 31
// ~63 (about four cache lines).
func TestRMATBlockStatsPaperAnchors(t *testing.T) {
	tm := DefaultTwoScanModel()
	st24 := RMATBlockStats(graph.DefaultRMAT(24, 1), 24-tm.BlockBits)
	st31 := RMATBlockStats(graph.DefaultRMAT(31, 1), 31-tm.BlockBits)
	// The stripe width is fitted to the scale-31 anchor (the mechanism
	// behind the Figure 12 tail); the scale-24 population lands within
	// ~3x of the paper's 12,000.
	if st24.AvgPerBlock < 3000 || st24.AvgPerBlock > 24000 {
		t.Errorf("R-MAT 24 avg block nnz = %.0f, paper ~12000", st24.AvgPerBlock)
	}
	if st31.AvgPerBlock < 40 || st31.AvgPerBlock > 130 {
		t.Errorf("R-MAT 31 avg block nnz = %.0f, paper ~63", st31.AvgPerBlock)
	}
}

func TestRMATBlockStatsBounds(t *testing.T) {
	cfg := graph.DefaultRMAT(10, 1)
	st := RMATBlockStats(cfg, 5)
	cells := float64(uint64(1) << (2 * 5))
	if st.OccupiedCells <= 0 || st.OccupiedCells > cells {
		t.Errorf("occupied = %v of %v cells", st.OccupiedCells, cells)
	}
	if st.AvgPerBlock < float64(cfg.Edges())/cells {
		t.Error("avg per occupied block below uniform average")
	}
	// Grid depth 0: one block holding everything.
	st0 := RMATBlockStats(cfg, 0)
	if math.Abs(st0.OccupiedCells-1) > 1e-9 || st0.AvgPerBlock != float64(cfg.Edges()) {
		t.Errorf("depth-0 stats wrong: %+v", st0)
	}
}

func TestRMATBlockStatsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad gridBits did not panic")
		}
	}()
	RMATBlockStats(graph.DefaultRMAT(10, 1), 11)
}

// TestFigure12Shape: the projected curve declines at large scales and
// the decline is attributable to shrinking blocks.
func TestFigure12Shape(t *testing.T) {
	m := e870()
	tm := DefaultTwoScanModel()
	var prev TwoScanPoint
	for i, scale := range []int{20, 24, 27, 29, 31} {
		p := ProjectTwoScan(m, tm, scale)
		if p.GFLOPs <= 0 {
			t.Fatalf("scale %d: %v GFLOP/s", scale, p.GFLOPs)
		}
		if i > 0 {
			if p.GFLOPs > prev.GFLOPs+1e-9 {
				t.Errorf("rate rose from scale %d to %d", prev.Scale, p.Scale)
			}
			if p.AvgBlockNNZ >= prev.AvgBlockNNZ {
				t.Errorf("block population rose from scale %d to %d", prev.Scale, p.Scale)
			}
		}
		prev = p
	}
	// The drop from scale 24 to 31 must be substantial (the paper's
	// decreasing performance) but not total.
	p24 := ProjectTwoScan(m, tm, 24)
	p31 := ProjectTwoScan(m, tm, 31)
	ratio := p24.GFLOPs / p31.GFLOPs
	if ratio < 1.5 || ratio > 10 {
		t.Errorf("scale-24/scale-31 ratio = %.1f, want a clear but bounded decline", ratio)
	}
}

// TestFigure11Shape: Dense leads; structured matrices track it; the
// power-law matrices trail (the Figure 11 observation).
func TestFigure11Shape(t *testing.T) {
	m := e870()
	cm := DefaultCSRModel()
	rates := map[string]float64{}
	var dense float64
	for _, p := range graph.Suite() {
		pt := ProjectCSR(m, cm, p)
		rates[p.Name] = pt.GFLOPs
		if p.Name == "Dense" {
			dense = pt.GFLOPs
		}
		if pt.GFLOPs <= 0 {
			t.Fatalf("%s: %v", p.Name, pt.GFLOPs)
		}
	}
	if dense == 0 {
		t.Fatal("no Dense reference")
	}
	for name, r := range rates {
		if r > dense+1e-9 {
			t.Errorf("%s (%.1f) exceeds Dense (%.1f)", name, r, dense)
		}
	}
	// Large structured matrices within 65% of Dense.
	for _, name := range []string{"Wind Tunnel", "FEM/Spheres", "FEM/Ship"} {
		if rates[name] < 0.65*dense {
			t.Errorf("%s = %.1f, too far below Dense %.1f", name, rates[name], dense)
		}
	}
	// Power-law matrices clearly below the structured ones.
	if rates["Webbase"] >= rates["Wind Tunnel"] {
		t.Errorf("Webbase (%.1f) not below Wind Tunnel (%.1f)", rates["Webbase"], rates["Wind Tunnel"])
	}
}

// TestFigure10Shape: projected Jaccard time and footprint grow
// superlinearly with scale, and the output dwarfs the input.
func TestFigure10Shape(t *testing.T) {
	m := e870()
	jm := DefaultJaccardModel()
	var prev JaccardPoint
	for i, scale := range []int{17, 19, 21} {
		p := ProjectJaccard(m, jm, scale, 1)
		if p.TimeSec <= 0 || p.Footprint <= 0 {
			t.Fatalf("scale %d: %+v", scale, p)
		}
		if i > 0 {
			growth := p.TimeSec / prev.TimeSec
			if growth < 2.5 {
				t.Errorf("time grew only %.1fx from scale %d to %d; expect superlinear (>4x per 2 scales)",
					growth, prev.Scale, p.Scale)
			}
		}
		inputBytes := float64(p.Footprint) - p.Pairs*16
		if p.Pairs*16 < 4*inputBytes {
			t.Errorf("scale %d: output %.3g B not >> input %.3g B", scale, p.Pairs*16, inputBytes)
		}
		prev = p
	}
}

// TestJaccardDedupRatioRealistic validates the projection's fitted
// dedup-ratio law against real all-pairs runs, in the projection's own
// operation space (raw multigraph degrees).
func TestJaccardDedupRatioRealistic(t *testing.T) {
	jm := DefaultJaccardModel()
	for _, scale := range []int{11, 13} {
		cfg := graph.DefaultRMAT(scale, 1)
		cfg.EdgeFactor = 8
		cfg.Undirected = true
		g := graph.RMAT(cfg)
		st := jaccard.AllPairs(g, 0, nil)

		raw := graph.DefaultRMAT(scale, 1)
		raw.EdgeFactor = 8
		rawDeg, err := graph.RMATDegrees(raw)
		if err != nil {
			t.Fatal(err)
		}
		var rawOps float64
		for _, d := range rawDeg {
			rawOps += float64(d) * float64(d)
		}
		measured := float64(st.Pairs) / rawOps
		model := jm.DedupAt(scale)
		if !stats.Within(measured, model, 0.20) {
			t.Errorf("scale %d: measured raw-space ratio %.4f vs model %.4f", scale, measured, model)
		}
	}
}

func TestDedupAtLaw(t *testing.T) {
	jm := DefaultJaccardModel()
	// Geometric growth, capped.
	if jm.DedupAt(11) <= jm.DedupAt(10) {
		t.Error("ratio should grow with scale")
	}
	if got := jm.DedupAt(jm.BaseScale); got != jm.DedupBase {
		t.Errorf("base scale ratio = %v", got)
	}
	if jm.DedupAt(60) != jm.DedupCap {
		t.Error("cap not applied")
	}
	if jm.DedupAt(5) >= jm.DedupBase {
		t.Error("ratio below base scale should shrink")
	}
}
