// Package perfmodel projects the paper's applications onto the E870
// machine model, producing the paper-scale numbers behind Figure 10
// (Jaccard), Figure 11 (CSR SpMV), Figure 12 (graph SpMV) and Table VI
// (Hartree-Fock) that cannot be measured directly on a host machine.
//
// Methodology: each projection is a small first-principles cost model
// (operation and traffic counts through the machine's bandwidth model)
// with at most a handful of calibration constants anchored on a single
// reference point; the remaining points are predictions, which
// EXPERIMENTS.md compares against the paper row by row.
package perfmodel

import (
	"fmt"

	"repro/internal/hf"
)

// HFCosts holds the E870 unit costs of the four Hartree-Fock stages,
// in seconds per unit of work.
type HFCosts struct {
	// PrecompPerERI: seconds to compute and store one redundant ERI
	// tensor entry during HF-Mem precomputation.
	PrecompPerERI float64
	// RecomputePerERI: seconds to recompute one entry inside an HF-Comp
	// iteration (integral evaluation dominates).
	RecomputePerERI float64
	// FockPerERI: seconds to stream one stored entry through the Fock
	// accumulation (memory-bandwidth bound).
	FockPerERI float64
	// DensityPerN3: seconds per n_f^3 of the density stage (the
	// eigensolve / spectral projector).
	DensityPerN3 float64
	// OverheadPerN2: per-iteration seconds per n_f^2 not attributed to
	// Fock or Density (screening refresh, convergence checks,
	// reductions — all quadratic in the basis size).
	OverheadPerN2 float64
}

// CalibrateHF derives the unit costs from one anchor system's published
// Table V/VI row. Every other molecule's Table VI row is then a
// prediction — the cross-validation EXPERIMENTS.md reports.
func CalibrateHF(anchor hf.MoleculeSpec) HFCosts {
	n3 := float64(anchor.Functions)
	n3 = n3 * n3 * n3
	iters := float64(anchor.PaperIters)
	c := HFCosts{
		PrecompPerERI: anchor.PaperPrecomp / anchor.PaperERIs,
		// HF-Comp spends each iteration recomputing the surviving ERIs
		// plus the same Fock accumulation.
		RecomputePerERI: (anchor.PaperHFComp/iters - anchor.PaperFock) / anchor.PaperERIs,
		FockPerERI:      anchor.PaperFock / anchor.PaperERIs,
		DensityPerN3:    anchor.PaperDensity / n3,
	}
	// Residual per-iteration overhead so the anchor's HF-Mem total is
	// reproduced exactly; attributed to O(n_f^2) bookkeeping.
	perIter := (anchor.PaperTotal-anchor.PaperPrecomp)/iters -
		anchor.PaperFock - anchor.PaperDensity
	if perIter < 0 {
		perIter = 0
	}
	n2 := float64(anchor.Functions) * float64(anchor.Functions)
	c.OverheadPerN2 = perIter / n2
	return c
}

// TableVIRow is one projected row of Table VI.
type TableVIRow struct {
	Molecule string
	Iters    int
	HFComp   float64 // seconds
	Precomp  float64
	Fock     float64 // per iteration
	Density  float64 // per iteration
	Total    float64 // HF-Mem total
	Speedup  float64
}

// ProjectHF predicts a molecule's Table VI row from its ERI entry count
// (either the paper's or a measured synthetic count), its basis size and
// its iteration count.
func ProjectHF(c HFCosts, molecule string, eris float64, functions, iters int) TableVIRow {
	if eris <= 0 || functions <= 0 || iters <= 0 {
		panic(fmt.Sprintf("perfmodel: invalid HF projection inputs %g/%d/%d", eris, functions, iters))
	}
	n3 := float64(functions)
	n3 = n3 * n3 * n3
	row := TableVIRow{
		Molecule: molecule,
		Iters:    iters,
		Precomp:  c.PrecompPerERI * eris,
		Fock:     c.FockPerERI * eris,
		Density:  c.DensityPerN3 * n3,
	}
	n2 := float64(functions) * float64(functions)
	row.HFComp = float64(iters) * (c.RecomputePerERI*eris + row.Fock)
	row.Total = row.Precomp + float64(iters)*(row.Fock+row.Density+c.OverheadPerN2*n2)
	row.Speedup = row.HFComp / row.Total
	return row
}

// ProjectTableVI projects every Table V molecule using the paper's own
// ERI counts and iteration numbers, calibrated on the given anchor
// index (0 = alkane-842).
func ProjectTableVI(anchorIdx int) []TableVIRow {
	specs := hf.TableV()
	if anchorIdx < 0 || anchorIdx >= len(specs) {
		panic(fmt.Sprintf("perfmodel: anchor index %d", anchorIdx))
	}
	costs := CalibrateHF(specs[anchorIdx])
	rows := make([]TableVIRow, len(specs))
	for i, s := range specs {
		rows[i] = ProjectHF(costs, s.Name, s.PaperERIs, s.Functions, s.PaperIters)
	}
	return rows
}
