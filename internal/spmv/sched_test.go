package spmv

import (
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// TestCSRScheduleIdentity: both schedules, at any worker count or
// grain, produce output bit-identical to the sequential kernel — each
// row's dot product accumulates in CSR element order regardless of
// which worker computes it.
func TestCSRScheduleIdentity(t *testing.T) {
	for _, m := range []*graph.CSR{
		graph.RMAT(graph.DefaultRMAT(11, 7)), // skewed scale-free
		randomMatrix(9, 2000, 8),             // uniform random
	} {
		x := vec(m.Cols)
		want := make([]float64, m.Rows)
		CSRWith(want, m, x, 1, Options{}) // one worker: sequential oracle
		for _, threads := range []int{2, 4, 8, 16} {
			for _, opt := range []Options{
				{Sched: parallel.Dynamic},
				{Sched: parallel.Dynamic, Grain: 1},
				{Sched: parallel.Dynamic, Grain: 37},
				{Sched: parallel.Static},
			} {
				y := make([]float64, m.Rows)
				CSRWith(y, m, x, threads, opt)
				for i := range y {
					if y[i] != want[i] {
						t.Fatalf("threads=%d sched=%v grain=%d: y[%d] = %v, want %v (must be bit-identical)",
							threads, opt.Sched, opt.Grain, i, y[i], want[i])
					}
				}
			}
		}
	}
}

// TestTwoScanThreadIdentity: the two-scan kernel writes disjoint y
// stripes whose per-row accumulation order is fixed by the block walk,
// so any worker count reproduces the one-worker bits.
func TestTwoScanThreadIdentity(t *testing.T) {
	m := graph.RMAT(graph.DefaultRMAT(10, 4))
	ts := NewTwoScan(m, 128)
	x := vec(m.Cols)
	want := make([]float64, m.Rows)
	ts.Multiply(want, x, 1)
	for _, threads := range []int{2, 5, 16} {
		y := make([]float64, m.Rows)
		ts.Multiply(y, x, threads)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("threads=%d: y[%d] = %v, want %v", threads, i, y[i], want[i])
			}
		}
	}
}

// TestPageRankWorkerCountTolerance: the static-schedule reductions
// change floating-point grouping with the worker count, but only at
// rounding level.
func TestPageRankWorkerCountTolerance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(9, 11))
	r1, _ := PageRank(g, 0.85, 1e-12, 200, 1)
	for _, threads := range []int{2, 4, 8} {
		rN, _ := PageRank(g, 0.85, 1e-12, 200, threads)
		for i := range r1 {
			d := r1[i] - rN[i]
			if d < -1e-12 || d > 1e-12 {
				t.Fatalf("threads=%d: rank[%d] differs by %g", threads, i, d)
			}
		}
	}
}

// TestPageRankDeterministicPerWorkerCount: for a fixed worker count the
// static reductions merge partials in a fixed order, so repeated runs
// are bit-identical.
func TestPageRankDeterministicPerWorkerCount(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(9, 3))
	a, itA := PageRank(g, 0.85, 1e-12, 200, 4)
	b, itB := PageRank(g, 0.85, 1e-12, 200, 4)
	if itA != itB {
		t.Fatalf("iteration counts differ: %d vs %d", itA, itB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank[%d] not reproducible: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCSRSteadyStateSpawnsNothing: after warmup, repeated CSR calls
// start no goroutines (the team is persistent) and stay within a few
// allocations (the scheduling closures).
func TestCSRSteadyStateSpawnsNothing(t *testing.T) {
	m := randomMatrix(5, 4000, 8)
	x := vec(m.Cols)
	y := make([]float64, m.Rows)
	const threads = 4
	CSR(y, m, x, threads) // warmup: creates the shared team
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		CSR(y, m, x, threads)
	}
	after := runtime.NumGoroutine()
	if after > before {
		t.Errorf("goroutines grew %d -> %d across steady-state SpMV calls", before, after)
	}
	allocs := testing.AllocsPerRun(20, func() {
		CSR(y, m, x, threads)
	})
	if allocs > 4 {
		t.Errorf("steady-state CSR allocates %.1f objects per call, want <= 4", allocs)
	}
}

// TestCSRGrainNNZAware: grain shrinks as rows get denser, and respects
// the chunks-per-worker cap.
func TestCSRGrainNNZAware(t *testing.T) {
	sparse := randomMatrix(1, 10000, 2)
	dense := randomMatrix(1, 10000, 64)
	gs := csrGrain(sparse, 4)
	gd := csrGrain(dense, 4)
	if gs <= gd {
		t.Errorf("grain not nnz-aware: sparse %d, dense %d rows per chunk", gs, gd)
	}
	if gd < 1 || gs < 1 {
		t.Errorf("grain must be positive: %d %d", gs, gd)
	}
	if maxG := sparse.Rows / (4 * 4); gs > maxG {
		t.Errorf("grain %d exceeds chunks-per-worker cap %d", gs, maxG)
	}
}
