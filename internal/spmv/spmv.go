// Package spmv implements the two sparse matrix-vector multiply designs
// of Section V-B: a CSR kernel with nnz-balanced 1D row partitioning for
// HPC matrices (Figure 11), where the paper replicates the input vector
// per socket; and the two-scan scaled/blocked algorithm of Buono et al.
// for scale-free graphs (Figure 12), which column-blocks a scaling pass
// and row-blocks a reduction pass so each pass's vector chunk stays in
// cache.
package spmv

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/units"
)

// PartitionRows returns parts+1 row boundaries that balance nonzeros:
// partition p owns rows [bounds[p], bounds[p+1]). Mirrors the paper's
// static 1D partitioning with per-partition nnz balancing.
func PartitionRows(m *graph.CSR, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("spmv: parts = %d", parts))
	}
	bounds := make([]int, parts+1)
	total := m.NNZ()
	row := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for row < m.Rows && m.RowPtr[row] < target {
			row++
		}
		bounds[p] = row
	}
	bounds[parts] = m.Rows
	return bounds
}

// CSR computes y = A*x with the row-partitioned CSR kernel.
func CSR(y []float64, m *graph.CSR, x []float64, threads int) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("spmv: dims y=%d x=%d for %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	workers := stream.Parallelism(threads)
	bounds := PartitionRows(m, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		lo, hi := bounds[p], bounds[p+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				var sum float64
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					sum += m.Vals[k] * x[m.ColIdx[k]]
				}
				y[i] = sum
			}
		}(lo, hi)
	}
	wg.Wait()
}

// Flops returns the floating-point operations of one SpMV: 2 per nonzero.
func Flops(m *graph.CSR) float64 { return 2 * float64(m.NNZ()) }

// MeasureCSR times iters repetitions of the CSR kernel after a warmup and
// returns the throughput.
func MeasureCSR(m *graph.CSR, threads, iters int) units.Rate {
	if iters <= 0 {
		panic("spmv: iters must be positive")
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%3)
	}
	y := make([]float64, m.Rows)
	CSR(y, m, x, threads) // warmup
	start := time.Now()
	for it := 0; it < iters; it++ {
		CSR(y, m, x, threads)
	}
	sec := time.Since(start).Seconds()
	return units.Rate(Flops(m) * float64(iters) / sec)
}
