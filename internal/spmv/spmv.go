// Package spmv implements the two sparse matrix-vector multiply designs
// of Section V-B: a CSR kernel with nnz-balanced 1D row partitioning for
// HPC matrices (Figure 11), where the paper replicates the input vector
// per socket; and the two-scan scaled/blocked algorithm of Buono et al.
// for scale-free graphs (Figure 12), which column-blocks a scaling pass
// and row-blocks a reduction pass so each pass's vector chunk stays in
// cache.
//
// All kernels run on the persistent worker team of internal/parallel:
// steady-state iteration (PageRank power steps, MeasureCSR repetitions)
// spawns no goroutines. The CSR kernel defaults to dynamic chunking with
// nnz-aware grain sizing so hub-heavy scale-free rows rebalance across
// workers; Options selects the paper's static nnz-balanced pre-split
// instead. Either schedule computes each row's dot product in the same
// element order, so results are bit-identical to the sequential kernel.
package spmv

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/units"
)

// PartitionRows returns parts+1 row boundaries that balance nonzeros:
// partition p owns rows [bounds[p], bounds[p+1]). Mirrors the paper's
// static 1D partitioning with per-partition nnz balancing.
func PartitionRows(m *graph.CSR, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("spmv: parts = %d", parts))
	}
	bounds := make([]int, parts+1)
	total := m.NNZ()
	row := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for row < m.Rows && m.RowPtr[row] < target {
			row++
		}
		bounds[p] = row
	}
	bounds[parts] = m.Rows
	return bounds
}

// Options tunes the CSR kernel's schedule.
type Options struct {
	// Sched picks the schedule: Dynamic (default) pulls row chunks from
	// an atomic cursor; Static uses the nnz-balanced pre-split of
	// PartitionRows (the paper's partitioning).
	Sched parallel.Schedule
	// Grain is the dynamic chunk size in rows; 0 sizes chunks so each
	// carries roughly equal nonzeros (nnz-aware auto grain).
	Grain int
}

// CSR computes y = A*x with the row-partitioned CSR kernel using the
// default dynamic schedule.
func CSR(y []float64, m *graph.CSR, x []float64, threads int) {
	CSRWith(y, m, x, threads, Options{})
}

// CSRWith computes y = A*x with an explicit schedule choice.
func CSRWith(y []float64, m *graph.CSR, x []float64, threads int, opt Options) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("spmv: dims y=%d x=%d for %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	workers := parallel.Workers(threads)
	if opt.Sched == parallel.Static {
		bounds := PartitionRows(m, workers)
		parallel.StaticRanges(workers, bounds, func(_, lo, hi int) {
			csrRows(y, m, x, lo, hi)
		})
		return
	}
	grain := opt.Grain
	if grain <= 0 {
		grain = csrGrain(m, workers)
	}
	parallel.For(workers, m.Rows, grain, func(lo, hi int) {
		csrRows(y, m, x, lo, hi)
	})
}

// csrRows is the serial row kernel both schedules share; each row's sum
// accumulates in CSR element order, so output bits do not depend on the
// schedule.
func csrRows(y []float64, m *graph.CSR, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			sum += m.Vals[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
}

// csrGrain sizes dynamic chunks by nonzeros, not rows: a chunk carries
// ~4096 nnz on average, so uniform matrices get coarse chunks (low
// scheduling overhead) while scale-free matrices get fine ones (hub
// rows can rebalance). Capped so every worker sees several chunks.
func csrGrain(m *graph.CSR, workers int) int {
	rows := m.Rows
	if rows == 0 {
		return 1
	}
	avg := float64(m.NNZ()) / float64(rows)
	if avg < 1 {
		avg = 1
	}
	g := int(4096 / avg)
	if g < 1 {
		g = 1
	}
	if maxG := rows / (workers * 4); maxG >= 1 && g > maxG {
		g = maxG
	}
	return g
}

// Flops returns the floating-point operations of one SpMV: 2 per nonzero.
func Flops(m *graph.CSR) float64 { return 2 * float64(m.NNZ()) }

// MeasureCSR times iters repetitions of the CSR kernel after a warmup and
// returns the throughput.
func MeasureCSR(m *graph.CSR, threads, iters int) units.Rate {
	return MeasureCSRWith(m, threads, iters, Options{})
}

// MeasureCSRWith is MeasureCSR with an explicit schedule choice.
func MeasureCSRWith(m *graph.CSR, threads, iters int, opt Options) units.Rate {
	if iters <= 0 {
		panic("spmv: iters must be positive")
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%3)
	}
	y := make([]float64, m.Rows)
	CSRWith(y, m, x, threads, opt) // warmup
	start := time.Now()
	for it := 0; it < iters; it++ {
		CSRWith(y, m, x, threads, opt)
	}
	sec := time.Since(start).Seconds()
	return units.Rate(Flops(m) * float64(iters) / sec)
}
