package spmv

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// PageRank computes the PageRank vector of a directed graph given as a
// CSR adjacency matrix (rows are sources), by power iteration over the
// column-stochastic transition matrix — one of the graph algorithms the
// paper names as an SpMV consumer (Section V-B). Dangling vertices
// redistribute uniformly. It returns the ranks and the iterations used.
func PageRank(g *graph.CSR, damping float64, tol float64, maxIters, threads int) ([]float64, int) {
	if g.Rows != g.Cols {
		panic(fmt.Sprintf("spmv: PageRank needs a square adjacency, got %dx%d", g.Rows, g.Cols))
	}
	if damping <= 0 || damping >= 1 {
		panic(fmt.Sprintf("spmv: damping %g out of (0,1)", damping))
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	n := g.Rows
	// Build the transpose once: rank flows along out-edges, so the
	// update y = A^T (r / outdeg) is an SpMV with the transposed matrix.
	at := g.Transpose()
	outDeg := make([]float64, n)
	for i := 0; i < n; i++ {
		outDeg[i] = float64(g.Degree(i))
	}
	r := make([]float64, n)
	scaled := make([]float64, n)
	y := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	iters := 0
	for iters = 1; iters <= maxIters; iters++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += r[i]
				scaled[i] = 0
			} else {
				scaled[i] = r[i] / outDeg[i]
			}
		}
		CSR(y, at, scaled, threads)
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		var delta float64
		for i := 0; i < n; i++ {
			v := base + damping*y[i]
			delta += math.Abs(v - r[i])
			r[i] = v
		}
		if delta < tol {
			break
		}
	}
	return r, iters
}
