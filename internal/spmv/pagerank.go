package spmv

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// PageRank computes the PageRank vector of a directed graph given as a
// CSR adjacency matrix (rows are sources), by power iteration over the
// column-stochastic transition matrix — one of the graph algorithms the
// paper names as an SpMV consumer (Section V-B). Dangling vertices
// redistribute uniformly. It returns the ranks and the iterations used.
//
// Every per-iteration pass — the scale/dangling pass, the SpMV, and the
// delta/update pass — runs on the persistent worker team, so the power
// loop spawns no goroutines. The two reduction passes use the static
// schedule: each worker owns a fixed contiguous range and partials merge
// in worker order, so results are deterministic for a given worker
// count.
func PageRank(g *graph.CSR, damping float64, tol float64, maxIters, threads int) ([]float64, int) {
	if g.Rows != g.Cols {
		panic(fmt.Sprintf("spmv: PageRank needs a square adjacency, got %dx%d", g.Rows, g.Cols))
	}
	if damping <= 0 || damping >= 1 {
		panic(fmt.Sprintf("spmv: damping %g out of (0,1)", damping))
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 100
	}
	n := g.Rows
	workers := parallel.Workers(threads)
	// Build the transpose once: rank flows along out-edges, so the
	// update y = A^T (r / outdeg) is an SpMV with the transposed matrix.
	at := g.Transpose()
	outDeg := make([]float64, n)
	for i := 0; i < n; i++ {
		outDeg[i] = float64(g.Degree(i))
	}
	r := make([]float64, n)
	scaled := make([]float64, n)
	y := make([]float64, n)
	partials := make([]float64, workers)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	iters := 0
	for iters = 1; iters <= maxIters; iters++ {
		// Pass 1: scale by out-degree, accumulating the dangling mass in
		// per-worker partials.
		for w := range partials {
			partials[w] = 0
		}
		parallel.StaticFor(workers, n, func(w, lo, hi int) {
			var dl float64
			for i := lo; i < hi; i++ {
				if outDeg[i] == 0 {
					dl += r[i]
					scaled[i] = 0
				} else {
					scaled[i] = r[i] / outDeg[i]
				}
			}
			partials[w] = dl
		})
		var dangling float64
		for _, v := range partials {
			dangling += v
		}

		CSRWith(y, at, scaled, workers, Options{})

		// Pass 2: apply damping and accumulate the L1 change.
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for w := range partials {
			partials[w] = 0
		}
		parallel.StaticFor(workers, n, func(w, lo, hi int) {
			var dl float64
			for i := lo; i < hi; i++ {
				v := base + damping*y[i]
				dl += math.Abs(v - r[i])
				r[i] = v
			}
			partials[w] = dl
		})
		var delta float64
		for _, v := range partials {
			delta += v
		}
		if delta < tol {
			break
		}
	}
	return r, iters
}
