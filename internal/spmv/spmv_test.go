package spmv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// reference is a trivially correct serial SpMV.
func reference(m *graph.CSR, x []float64) []float64 {
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k := range cols {
			y[i] += vals[k] * x[cols[k]]
		}
	}
	return y
}

func randomMatrix(seed uint64, n int, perRow int) *graph.CSR {
	return graph.Generate(graph.MatrixProfile{
		Name: "t", N: n, NNZ: int64(n * perRow), Kind: graph.KindRandom,
	}, seed)
}

func vec(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	return x
}

func TestCSRMatchesReference(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		m := randomMatrix(42, 500, 9)
		x := vec(m.Cols)
		want := reference(m, x)
		y := make([]float64, m.Rows)
		CSR(y, m, x, threads)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				t.Fatalf("threads=%d: y[%d] = %v, want %v", threads, i, y[i], want[i])
			}
		}
	}
}

func TestCSRDense(t *testing.T) {
	m := graph.Dense(32)
	x := vec(32)
	want := reference(m, x)
	y := make([]float64, 32)
	CSR(y, m, x, 4)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9 {
			t.Fatalf("dense y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestCSRPanicsOnDims(t *testing.T) {
	m := graph.Dense(4)
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch did not panic")
		}
	}()
	CSR(make([]float64, 3), m, make([]float64, 4), 1)
}

func TestPartitionRowsBalanced(t *testing.T) {
	m := graph.RMAT(graph.DefaultRMAT(12, 5))
	const parts = 8
	bounds := PartitionRows(m, parts)
	if bounds[0] != 0 || bounds[parts] != m.Rows {
		t.Fatalf("bounds endpoints %v", bounds)
	}
	total := m.NNZ()
	for p := 0; p < parts; p++ {
		if bounds[p] > bounds[p+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
		nnz := m.RowPtr[bounds[p+1]] - m.RowPtr[bounds[p]]
		// Power-law rows make perfect balance impossible; within 3x of
		// fair share is what nnz-balanced splitting guarantees here.
		if float64(nnz) > 3*float64(total)/parts {
			t.Errorf("partition %d carries %d of %d nnz", p, nnz, total)
		}
	}
}

func TestPartitionRowsSingle(t *testing.T) {
	m := graph.Dense(10)
	b := PartitionRows(m, 1)
	if len(b) != 2 || b[0] != 0 || b[1] != 10 {
		t.Errorf("bounds = %v", b)
	}
}

func TestPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero parts did not panic")
		}
	}()
	PartitionRows(graph.Dense(4), 0)
}

func TestTwoScanMatchesReference(t *testing.T) {
	for _, blockSize := range []int{16, 100, 4096} {
		m := graph.RMAT(graph.DefaultRMAT(10, 3))
		ts := NewTwoScan(m, blockSize)
		if ts.NNZ() != m.NNZ() {
			t.Fatalf("blocking lost nonzeros: %d vs %d", ts.NNZ(), m.NNZ())
		}
		x := vec(m.Cols)
		want := reference(m, x)
		y := make([]float64, m.Rows)
		ts.Multiply(y, x, 4)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				t.Fatalf("block=%d: y[%d] = %v, want %v", blockSize, i, y[i], want[i])
			}
		}
	}
}

func TestTwoScanProperty(t *testing.T) {
	// Property: two-scan equals reference for random small matrices and
	// any block size.
	f := func(seed uint64, bs uint8) bool {
		m := randomMatrix(seed, 60, 4)
		blockSize := int(bs)%64 + 1
		ts := NewTwoScan(m, blockSize)
		x := vec(m.Cols)
		want := reference(m, x)
		y := make([]float64, m.Rows)
		ts.Multiply(y, x, 2)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoScanRepeatedMultiply(t *testing.T) {
	// Reduce must overwrite y, so repeated multiplies are stable.
	m := randomMatrix(3, 200, 5)
	ts := NewTwoScan(m, 64)
	x := vec(m.Cols)
	y1 := make([]float64, m.Rows)
	y2 := make([]float64, m.Rows)
	ts.Multiply(y1, x, 2)
	ts.Multiply(y2, x, 2)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("repeated multiply diverged")
		}
	}
}

// TestTwoScanBlockShrinkage verifies the Figure 12 mechanism: at constant
// average degree, larger matrices have emptier blocks.
func TestTwoScanBlockShrinkage(t *testing.T) {
	small := NewTwoScan(graph.RMAT(graph.DefaultRMAT(10, 1)), 256)
	large := NewTwoScan(graph.RMAT(graph.DefaultRMAT(14, 1)), 256)
	if large.AvgBlockNNZ() >= small.AvgBlockNNZ() {
		t.Errorf("avg block nnz grew with scale: %v -> %v",
			small.AvgBlockNNZ(), large.AvgBlockNNZ())
	}
}

func TestTwoScanPanics(t *testing.T) {
	m := graph.Dense(8)
	ts := NewTwoScan(m, 4)
	for _, fn := range []func(){
		func() { NewTwoScan(m, 0) },
		func() { ts.Scale(make([]float64, 3), 1) },
		func() { ts.Reduce(make([]float64, 3), 1) },
		func() { MeasureTwoScan(ts, 1, 0) },
		func() { MeasureCSR(m, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeasureCSRPositive(t *testing.T) {
	m := graph.Dense(128)
	if rate := MeasureCSR(m, 0, 2); rate.GFs() <= 0 {
		t.Errorf("rate = %v", rate)
	}
}

func TestMeasureTwoScanPositive(t *testing.T) {
	ts := NewTwoScan(graph.Dense(128), 64)
	if rate := MeasureTwoScan(ts, 0, 2); rate.GFs() <= 0 {
		t.Errorf("rate = %v", rate)
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(graph.Dense(10)); got != 200 {
		t.Errorf("Flops = %v", got)
	}
}
