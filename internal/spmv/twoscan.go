package spmv

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/units"
)

// TwoScan is the blocked representation for the graph SpMV algorithm of
// Section V-B-2. The matrix is cut into a grid of row-stripes x
// column-stripes; every block stores its nonzeros with explicit row and
// column indices plus a scratch slot for the scaled value.
//
// Scan 1 (Scale) walks the grid in column-stripe order, so each stripe's
// chunk of x stays in cache while the scaled values are written out
// (the paper notes this pass reads 10 and writes 8 bytes per nonzero,
// exploiting POWER8's concurrent read/write links).
// Scan 2 (Reduce) walks the same blocks in row-stripe order, so each
// stripe's chunk of y stays in cache while the scaled values stream back
// in. Only the iteration order changes between scans — the blocks are
// shared, no copies (the pointer exchange the paper describes).
type TwoScan struct {
	Rows, Cols int
	BlockSize  int // rows/cols per stripe
	rStripes   int
	cStripes   int
	blocks     []block // rStripes x cStripes, row-major
}

type block struct {
	rows   []int32
	cols   []int32
	vals   []float64
	scaled []float64
}

// NewTwoScan blocks a CSR matrix with the given stripe size. The stripe
// size is the locality knob: x and y chunks of blockSize elements must
// fit in cache.
func NewTwoScan(m *graph.CSR, blockSize int) *TwoScan {
	if blockSize <= 0 {
		panic(fmt.Sprintf("spmv: block size %d", blockSize))
	}
	ts := &TwoScan{
		Rows: m.Rows, Cols: m.Cols, BlockSize: blockSize,
		rStripes: (m.Rows + blockSize - 1) / blockSize,
		cStripes: (m.Cols + blockSize - 1) / blockSize,
	}
	ts.blocks = make([]block, ts.rStripes*ts.cStripes)
	// Count, then fill, to avoid repeated growth on huge matrices.
	counts := make([]int64, len(ts.blocks))
	for i := 0; i < m.Rows; i++ {
		rb := i / blockSize
		cols, _ := m.Row(i)
		for _, j := range cols {
			counts[rb*ts.cStripes+int(j)/blockSize]++
		}
	}
	for b := range ts.blocks {
		n := counts[b]
		ts.blocks[b].rows = make([]int32, 0, n)
		ts.blocks[b].cols = make([]int32, 0, n)
		ts.blocks[b].vals = make([]float64, 0, n)
		ts.blocks[b].scaled = make([]float64, n)
	}
	for i := 0; i < m.Rows; i++ {
		rb := i / blockSize
		cols, vals := m.Row(i)
		for k, j := range cols {
			b := &ts.blocks[rb*ts.cStripes+int(j)/blockSize]
			b.rows = append(b.rows, int32(i))
			b.cols = append(b.cols, j)
			b.vals = append(b.vals, vals[k])
		}
	}
	return ts
}

// NNZ returns the stored nonzero count.
func (ts *TwoScan) NNZ() int64 {
	var n int64
	for i := range ts.blocks {
		n += int64(len(ts.blocks[i].vals))
	}
	return n
}

// AvgBlockNNZ returns the mean nonzeros per non-empty block — the
// quantity the paper uses to explain Figure 12's decline at large scales
// (R-MAT 24 has ~12,000 elements per block; R-MAT 31 only ~63).
func (ts *TwoScan) AvgBlockNNZ() float64 {
	var n, used int64
	for i := range ts.blocks {
		if l := int64(len(ts.blocks[i].vals)); l > 0 {
			n += l
			used++
		}
	}
	if used == 0 {
		return 0
	}
	return float64(n) / float64(used)
}

// Scale runs scan 1: scaled[k] = vals[k] * x[cols[k]], in column-stripe
// order, parallelized over column stripes (disjoint x chunks). Stripes
// are dynamically scheduled on the persistent team: scale-free column
// stripes holding hub vertices carry far more nonzeros than the rest,
// and pulling rebalances them.
func (ts *TwoScan) Scale(x []float64, threads int) {
	if len(x) != ts.Cols {
		panic(fmt.Sprintf("spmv: x length %d for %d columns", len(x), ts.Cols))
	}
	workers := parallel.Workers(threads)
	parallel.For(workers, ts.cStripes, 1, func(lo, hi int) {
		for cb := lo; cb < hi; cb++ {
			for rb := 0; rb < ts.rStripes; rb++ {
				b := &ts.blocks[rb*ts.cStripes+cb]
				for k, j := range b.cols {
					b.scaled[k] = b.vals[k] * x[j]
				}
			}
		}
	})
}

// Reduce runs scan 2: y[rows[k]] += scaled[k], in row-stripe order,
// parallelized over row stripes (disjoint y chunks). y is overwritten.
func (ts *TwoScan) Reduce(y []float64, threads int) {
	if len(y) != ts.Rows {
		panic(fmt.Sprintf("spmv: y length %d for %d rows", len(y), ts.Rows))
	}
	workers := parallel.Workers(threads)
	parallel.For(workers, ts.rStripes, 1, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			// Zero this stripe's y chunk just before accumulating into
			// it, while it is about to be cache-resident anyway.
			yLo := rb * ts.BlockSize
			yHi := yLo + ts.BlockSize
			if yHi > ts.Rows {
				yHi = ts.Rows
			}
			for i := yLo; i < yHi; i++ {
				y[i] = 0
			}
			for cb := 0; cb < ts.cStripes; cb++ {
				b := &ts.blocks[rb*ts.cStripes+cb]
				for k, i := range b.rows {
					y[i] += b.scaled[k]
				}
			}
		}
	})
}

// Multiply runs both scans: y = A*x.
func (ts *TwoScan) Multiply(y, x []float64, threads int) {
	ts.Scale(x, threads)
	ts.Reduce(y, threads)
}

// MeasureTwoScan times the two-scan SpMV and returns its throughput at
// 2 FLOPs per nonzero (the scale multiply and the reduce add).
func MeasureTwoScan(ts *TwoScan, threads, iters int) units.Rate {
	if iters <= 0 {
		panic("spmv: iters must be positive")
	}
	x := make([]float64, ts.Cols)
	for i := range x {
		x[i] = 1 + float64(i%3)
	}
	y := make([]float64, ts.Rows)
	ts.Multiply(y, x, threads) // warmup
	start := time.Now()
	for it := 0; it < iters; it++ {
		ts.Multiply(y, x, threads)
	}
	sec := time.Since(start).Seconds()
	return units.Rate(2 * float64(ts.NNZ()) * float64(iters) / sec)
}
