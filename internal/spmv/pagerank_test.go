package spmv

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// line builds the directed path 0 -> 1 -> 2 -> ... -> n-1.
func line(n int) *graph.CSR {
	coo := &graph.COO{Rows: n, Cols: n}
	for i := 0; i < n-1; i++ {
		coo.Append(int32(i), int32(i+1), 1)
	}
	return graph.FromCOO(coo)
}

func TestPageRankSumsToOne(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(10, 3))
	r, iters := PageRank(g, 0.85, 1e-12, 200, 4)
	var sum float64
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
	if iters < 2 {
		t.Errorf("converged in %d iterations", iters)
	}
	for i, v := range r {
		if v <= 0 {
			t.Fatalf("rank[%d] = %v not positive", i, v)
		}
	}
}

// TestPageRankChain: along a directed path, rank accumulates downstream.
func TestPageRankChain(t *testing.T) {
	g := line(5)
	r, _ := PageRank(g, 0.85, 1e-14, 500, 1)
	for i := 1; i < 5; i++ {
		if r[i] <= r[i-1] {
			t.Errorf("rank[%d]=%v not above rank[%d]=%v on a chain", i, r[i], i-1, r[i-1])
		}
	}
}

// TestPageRankUniformOnCycle: a directed cycle is symmetric, so ranks
// are uniform.
func TestPageRankUniformOnCycle(t *testing.T) {
	const n = 6
	coo := &graph.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Append(int32(i), int32((i+1)%n), 1)
	}
	r, _ := PageRank(graph.FromCOO(coo), 0.85, 1e-14, 500, 2)
	for i := 1; i < n; i++ {
		if math.Abs(r[i]-r[0]) > 1e-10 {
			t.Errorf("cycle ranks not uniform: %v", r)
		}
	}
}

// TestPageRankHub: every vertex points at vertex 0, which must dominate.
func TestPageRankHub(t *testing.T) {
	const n = 10
	coo := &graph.COO{Rows: n, Cols: n}
	for i := 1; i < n; i++ {
		coo.Append(int32(i), 0, 1)
	}
	r, _ := PageRank(graph.FromCOO(coo), 0.85, 1e-14, 500, 2)
	for i := 1; i < n; i++ {
		if r[0] <= r[i] {
			t.Fatalf("hub rank %v not above leaf %v", r[0], r[i])
		}
	}
}

func TestPageRankThreadInvariance(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(9, 5))
	r1, _ := PageRank(g, 0.85, 1e-12, 200, 1)
	r8, _ := PageRank(g, 0.85, 1e-12, 200, 8)
	for i := range r1 {
		if math.Abs(r1[i]-r8[i]) > 1e-9 {
			t.Fatalf("thread count changed ranks at %d", i)
		}
	}
}

func TestPageRankPanics(t *testing.T) {
	g := line(4)
	for _, fn := range []func(){
		func() { PageRank(g, 0, 1e-9, 10, 1) },
		func() { PageRank(g, 1, 1e-9, 10, 1) },
		func() {
			coo := &graph.COO{Rows: 2, Cols: 3}
			coo.Append(0, 2, 1)
			PageRank(graph.FromCOO(coo), 0.85, 1e-9, 10, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
