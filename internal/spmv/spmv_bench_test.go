package spmv

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Benchmarks for the kernel-runtime migration. Two comparisons matter:
//
//  1. team vs spawn-per-call — the multi-iteration paths (PageRank
//     power steps, MeasureCSR repetitions) pay the goroutine set-up on
//     every call in the old pattern and never in the new one;
//  2. dynamic vs static scheduling — on a skewed R-MAT matrix the hub
//     rows gate a static partition's slowest worker, while dynamic
//     chunks rebalance; on a banded (uniform) matrix static has the
//     lower overhead.

func benchRMAT() *graph.CSR { return graph.RMAT(graph.DefaultRMAT(14, 1)) }
func benchBanded() *graph.CSR {
	return graph.Generate(graph.MatrixProfile{
		Name: "banded", N: 1 << 14, NNZ: 1 << 18, Kind: graph.KindBanded,
	}, 1)
}

func benchVectors(m *graph.CSR) (y, x []float64) {
	x = make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%3)
	}
	return make([]float64, m.Rows), x
}

// csrSpawn is the pre-team CSR kernel: static nnz-balanced partition,
// one fresh goroutine per worker per call. Kept as the benchmark
// baseline only.
func csrSpawn(y []float64, m *graph.CSR, x []float64, workers int) {
	bounds := PartitionRows(m, workers)
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		lo, hi := bounds[p], bounds[p+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			csrRows(y, m, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func BenchmarkCSRTeamDynamic(b *testing.B) {
	m := benchRMAT()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 4, Options{Sched: parallel.Dynamic})
	}
}

func BenchmarkCSRTeamStatic(b *testing.B) {
	m := benchRMAT()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 4, Options{Sched: parallel.Static})
	}
}

func BenchmarkCSRSpawnBaseline(b *testing.B) {
	m := benchRMAT()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csrSpawn(y, m, x, 4)
	}
}

// Static-vs-dynamic at 8 workers on the skewed R-MAT matrix (hub rows
// gate the static split) and the uniform banded matrix (static's lower
// overhead should win or tie).

func BenchmarkCSRDynamicRMAT8(b *testing.B) {
	m := benchRMAT()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 8, Options{Sched: parallel.Dynamic})
	}
}

func BenchmarkCSRStaticRMAT8(b *testing.B) {
	m := benchRMAT()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 8, Options{Sched: parallel.Static})
	}
}

func BenchmarkCSRDynamicBanded8(b *testing.B) {
	m := benchBanded()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 8, Options{Sched: parallel.Dynamic})
	}
}

func BenchmarkCSRStaticBanded8(b *testing.B) {
	m := benchBanded()
	y, x := benchVectors(m)
	b.SetBytes(m.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRWith(y, m, x, 8, Options{Sched: parallel.Static})
	}
}

// The multi-iteration paths: 50 power iterations per op.

func BenchmarkPageRank50Team(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(13, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// An unreachable tolerance forces the full 50 iterations so
		// every op does identical work (iters reads maxIters+1 when the
		// loop runs dry without converging).
		if _, iters := PageRank(g, 0.85, 1e-300, 50, 4); iters < 50 {
			b.Fatal("converged early; benchmark workload changed")
		}
	}
}

// pageRankSpawn is the pre-team power iteration: sequential scale and
// update passes, spawn-per-call SpMV. Baseline only.
func pageRankSpawn(g *graph.CSR, damping float64, maxIters, workers int) []float64 {
	n := g.Rows
	at := g.Transpose()
	outDeg := make([]float64, n)
	for i := 0; i < n; i++ {
		outDeg[i] = float64(g.Degree(i))
	}
	r := make([]float64, n)
	scaled := make([]float64, n)
	y := make([]float64, n)
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += r[i]
				scaled[i] = 0
			} else {
				scaled[i] = r[i] / outDeg[i]
			}
		}
		csrSpawn(y, at, scaled, workers)
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := 0; i < n; i++ {
			r[i] = base + damping*y[i]
		}
	}
	return r
}

func BenchmarkPageRank50SpawnBaseline(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(13, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := pageRankSpawn(g, 0.85, 50, 4); len(r) != g.Rows {
			b.Fatal("bad result")
		}
	}
}

// MeasureCSR's repetition loop: 20 SpMVs per op.

func BenchmarkMeasureCSR20Team(b *testing.B) {
	m := benchBanded()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if MeasureCSR(m, 4, 20) <= 0 {
			b.Fatal("no rate")
		}
	}
}

func BenchmarkMeasureCSR20SpawnBaseline(b *testing.B) {
	m := benchBanded()
	y, x := benchVectors(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		csrSpawn(y, m, x, 4) // warmup, as MeasureCSR does
		for it := 0; it < 20; it++ {
			csrSpawn(y, m, x, 4)
		}
	}
}

func BenchmarkTwoScanTeam(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(14, 1))
	ts := NewTwoScan(g, 4096)
	x := make([]float64, ts.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, ts.Rows)
	b.SetBytes(ts.NNZ() * 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Multiply(y, x, 4)
	}
}
