package power8

// Ablation benchmarks: each quantifies one POWER8 design choice the
// paper highlights, reporting the feature's worth as a custom metric.
// See internal/ablation for the studies themselves.

import (
	"testing"

	"repro/internal/ablation"
	"repro/internal/arch"
	"repro/internal/machine"
)

func BenchmarkAblationVictimL3(b *testing.B) {
	m := machine.New(arch.E870())
	var c ablation.Comparison
	for i := 0; i < b.N; i++ {
		c = ablation.VictimL3(m)
	}
	b.ReportMetric(c.Factor(), "x-latency-saved")
}

func BenchmarkAblationInterGroupRouting(b *testing.B) {
	var c ablation.Comparison
	for i := 0; i < b.N; i++ {
		c = ablation.InterGroupRouting(arch.E870())
	}
	b.ReportMetric(c.With/c.Without, "x-bandwidth-gained")
}

func BenchmarkAblationAsymmetricLinks(b *testing.B) {
	var r ablation.AsymmetricResult
	for i := 0; i < b.N; i++ {
		r = ablation.AsymmetricLinks()
	}
	b.ReportMetric(r.At2to1.With/r.At2to1.Without, "x-at-2to1")
	b.ReportMetric(r.At1to1.With/r.At1to1.Without, "x-at-1to1")
}

func BenchmarkAblationRegisterFile(b *testing.B) {
	var rows []ablation.Comparison
	for i := 0; i < b.N; i++ {
		rows = ablation.RegisterFile()
	}
	b.ReportMetric(rows[1].With/rows[0].With, "x-128-over-64-regs")
}

func BenchmarkAblationDCBTDetector(b *testing.B) {
	m := machine.New(arch.E870())
	var r ablation.DetectorResult
	for i := 0; i < b.N; i++ {
		r = ablation.DCBTVersusFasterDetector(m)
	}
	b.ReportMetric(float64(r.DCBT)/float64(r.FastDetector), "x-dcbt-over-fast-detector")
}
