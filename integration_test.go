package power8

// Integration tests: flows that cross package boundaries, validating
// that independently tested components agree with each other.

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/hf"
	"repro/internal/jaccard"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/spmv"
	"repro/internal/trace"
)

// TestIntegrationSpMVEnginesAgree: the CSR kernel, the two-scan kernel
// and PageRank built on top must be mutually consistent on the same
// R-MAT matrix.
func TestIntegrationSpMVEnginesAgree(t *testing.T) {
	g := graph.RMAT(graph.DefaultRMAT(11, 77))
	x := make([]float64, g.Cols)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	yCSR := make([]float64, g.Rows)
	spmv.CSR(yCSR, g, x, 0)

	ts := spmv.NewTwoScan(g, 512)
	yTS := make([]float64, g.Rows)
	ts.Multiply(yTS, x, 0)

	for i := range yCSR {
		if math.Abs(yCSR[i]-yTS[i]) > 1e-9 {
			t.Fatalf("row %d: CSR %v vs two-scan %v", i, yCSR[i], yTS[i])
		}
	}

	ranks, iters := spmv.PageRank(g, 0.85, 1e-10, 200, 0)
	if iters >= 200 {
		t.Error("PageRank did not converge on an R-MAT graph")
	}
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-8 {
		t.Errorf("PageRank mass = %v", sum)
	}
}

// TestIntegrationJaccardFeedsProjection: the measured host dedup ratio
// at one scale feeds the Figure 10 projection; projecting the same scale
// must then reproduce the measured pair count closely.
func TestIntegrationJaccardFeedsProjection(t *testing.T) {
	const scale = 12
	cfg := graph.DefaultRMAT(scale, 4)
	cfg.EdgeFactor = 8
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	st := jaccard.AllPairs(g, 0, nil)

	// Calibrate the dedup ratio in the projection's own operation space:
	// raw multigraph degrees, as RMATDegrees streams them.
	rawCfg := graph.DefaultRMAT(scale, 4)
	rawCfg.EdgeFactor = 8
	rawDeg, err := graph.RMATDegrees(rawCfg)
	if err != nil {
		t.Fatal(err)
	}
	var rawOps float64
	for _, d := range rawDeg {
		rawOps += float64(d) * float64(d)
	}
	measured := float64(st.Pairs) / rawOps
	jm := perfmodel.DefaultJaccardModel()
	// Re-anchor the fitted law at this measurement; the projection at
	// the same scale must then reproduce the measured pair count.
	jm.DedupBase *= measured / jm.DedupAt(scale)
	p := perfmodel.ProjectJaccard(NewE870(), jm, scale, 4)
	ratio := p.Pairs / float64(st.Pairs)
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("projected pairs %v vs measured %d (ratio %.2f)", p.Pairs, st.Pairs, ratio)
	}
	// The unanchored law must already be close (it was fitted on other
	// seeds).
	if def := perfmodel.DefaultJaccardModel().DedupAt(scale); !within(measured, def, 0.20) {
		t.Errorf("measured raw-space dedup ratio %.4f vs fitted law %.4f", measured, def)
	}
}

// within reports whether got is within frac of want.
func within(got, want, frac float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= want*frac
}

// TestIntegrationWalkerMatchesTableIV: the trace-driven walker and the
// analytic model must agree on every chip-to-chip latency, not just the
// interleaved row.
func TestIntegrationWalkerMatchesTableIV(t *testing.T) {
	m := NewE870()
	const lines = 256 * 1024 * 1024 / 128
	for _, dst := range []int{1, 4, 7} {
		dst := dst
		w := m.NewWalker(machine.WalkerConfig{
			Chip:            0,
			DisablePrefetch: true,
			Home:            func(uint64) arch.ChipID { return arch.ChipID(dst) },
		})
		// Cold DRAM-resident chase: every access is a remote DRAM miss.
		res := w.Run(trace.NewChase(0, lines, 1, uint64(dst)), 150000)
		analytic := m.DemandLatencyNs(0, arch.ChipID(dst))
		// Translation costs sit on top of the analytic uncore figure.
		if res.AvgNs() < analytic || res.AvgNs() > analytic+50 {
			t.Errorf("chip0->chip%d: walker %.0f ns vs analytic %.0f ns",
				dst, res.AvgNs(), analytic)
		}
	}
}

// TestIntegrationHFHostToProjection: a real host SCF feeds a Table
// VI-style projection: the host's HF-Mem/HF-Comp speedup and the
// projected E870 speedup must agree in direction and be of the same
// order.
func TestIntegrationHFHostToProjection(t *testing.T) {
	spec := hf.TableV()[3].Scaled(80)
	mol := spec.Build()
	comp, err := hf.Run(mol, hf.Config{Mode: hf.HFComp})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := hf.Run(mol, hf.Config{Mode: hf.HFMem})
	if err != nil {
		t.Fatal(err)
	}
	hostSpeedup := comp.Total.Seconds() / mem.Total.Seconds()
	if hostSpeedup <= 1 {
		t.Fatalf("host HF-Mem not faster: %.2fx", hostSpeedup)
	}
	rows := perfmodel.ProjectTableVI(0)
	proj := rows[3].Speedup // 1hsg-28
	if proj <= 1 {
		t.Fatalf("projected HF-Mem not faster: %.2fx", proj)
	}
	if hostSpeedup > 20*proj || proj > 20*hostSpeedup {
		t.Errorf("host (%.1fx) and projected (%.1fx) speedups wildly inconsistent", hostSpeedup, proj)
	}
}
