package power8

// Host-kernel benchmarks: the real, executable code paths (STREAM, SpMV,
// Jaccard, Hartree-Fock integrals, the cache/TLB/prefetch simulators)
// measured on the host machine with standard testing.B semantics.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/hf"
	"repro/internal/jaccard"
	"repro/internal/kernels"
	"repro/internal/linalg"
	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/rng"
	"repro/internal/spmv"
	"repro/internal/stream"
	"repro/internal/tlb"
	"repro/internal/trace"
)

func BenchmarkHostStreamTriad(b *testing.B) {
	const n = 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	b.SetBytes(3 * 8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream.Triad(x, y, z, 3.0, 0)
	}
}

func BenchmarkHostStreamRatio2to1(b *testing.B) {
	k := stream.NewRatioKernel(2, 1, 1<<20)
	b.SetBytes(int64(k.BytesPerStep()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(0)
	}
}

func BenchmarkHostSpMVCSR(b *testing.B) {
	m := graph.Generate(graph.MatrixProfile{
		Name: "bench", N: 100000, NNZ: 2000000, Kind: graph.KindBanded,
	}, 1)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(m.NNZ() * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.CSR(y, m, x, 0)
	}
}

func BenchmarkHostSpMVTwoScan(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(16, 1))
	ts := spmv.NewTwoScan(g, 4096)
	x := make([]float64, ts.Cols)
	y := make([]float64, ts.Rows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(ts.NNZ() * 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Multiply(y, x, 0)
	}
}

func BenchmarkHostJaccard(b *testing.B) {
	cfg := graph.DefaultRMAT(13, 1)
	cfg.EdgeFactor = 8
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := jaccard.AllPairs(g, 0, nil)
		if st.Pairs == 0 {
			b.Fatal("no pairs")
		}
	}
}

func BenchmarkHostRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graph.RMAT(graph.DefaultRMAT(14, uint64(i)))
		if g.NNZ() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkHostERIQuartet(b *testing.B) {
	mol := hf.TableV()[3].Scaled(64).Build()
	bs := mol.Basis
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += hf.ERI(bs[i%16], bs[(i+7)%16], bs[(i+3)%16], bs[(i+11)%16])
	}
	_ = sink
}

func BenchmarkHostFockBuild(b *testing.B) {
	mol := hf.TableV()[3].Scaled(48).Build()
	h := mol.CoreHamiltonian()
	d := linalg.NewMatrix(mol.NumFunctions())
	for i := 0; i < d.N; i++ {
		d.Set(i, i, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := hf.FockReference(mol, h, d)
		if f.N != d.N {
			b.Fatal("bad Fock")
		}
	}
}

func BenchmarkHostJacobiEigen(b *testing.B) {
	r := rng.New(7)
	m := linalg.NewMatrix(64)
	for i := 0; i < 64; i++ {
		for j := i; j < 64; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, _ := linalg.JacobiEigen(m)
		if len(vals) != 64 {
			b.Fatal("bad eigen")
		}
	}
}

func BenchmarkSimWalkerSequential(b *testing.B) {
	m := machine.New(arch.E870())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := m.NewWalker(machine.WalkerConfig{})
		w.Run(trace.NewSequential(0, 1<<14), 0)
	}
}

func BenchmarkSimWalkerChase(b *testing.B) {
	m := machine.New(arch.E870())
	ch := trace.NewChase(0, 1<<14, 1, 42)
	w := m.NewWalker(machine.WalkerConfig{DisablePrefetch: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Reset()
		w.Run(ch, 0)
	}
}

func BenchmarkSimTLBTranslate(b *testing.B) {
	x := tlb.New(arch.E870().Xlate, arch.Page64K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Translate(uint64(i) * 4096)
	}
}

func BenchmarkSimPrefetchEngine(b *testing.B) {
	e := prefetch.New(prefetch.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnDemand(uint64(i) * 128)
	}
}

func BenchmarkHostStencil3D(b *testing.B) {
	const n = 128
	interior := int64(n-2) * int64(n-2) * int64(n-2)
	src := kernels.NewGrid3D(n, n, n)
	dst := kernels.NewGrid3D(n, n, n)
	src.Fill(func(x, y, z int) float64 { return float64((x + y + z) % 5) })
	c := kernels.JacobiCoeffs()
	b.SetBytes(interior * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.Stencil7(dst, src, c, 0)
		src, dst = dst, src
	}
}

func BenchmarkHostFFT3D(b *testing.B) {
	const n = 64
	c := kernels.NewCube(n)
	for i := range c.Data {
		c.Data[i] = complex(float64(i%13), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.FFT3D(false, 0)
	}
}

func BenchmarkHostPageRank(b *testing.B) {
	g := graph.RMAT(graph.DefaultRMAT(14, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, iters := spmv.PageRank(g, 0.85, 1e-8, 100, 0); iters == 0 {
			b.Fatal("no iterations")
		}
	}
}

func BenchmarkHostChaseL1(b *testing.B) {
	b.ReportMetric(stream.HostChase(16*1024, 1_000_000, 1), "ns/load")
	for i := 0; i < b.N; i++ {
		_ = stream.HostChase(16*1024, 100_000, 1)
	}
}

func BenchmarkHostChaseDRAM(b *testing.B) {
	b.ReportMetric(stream.HostChase(256<<20, 1_000_000, 1), "ns/load")
	for i := 0; i < b.N; i++ {
		_ = stream.HostChase(256<<20, 100_000, 1)
	}
}

func BenchmarkSimRNG(b *testing.B) {
	r := rng.New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
