package power8

// Tests for the observed harness: per-experiment counter scopes must be
// deterministic run to run, and a parallel run must put exactly the same
// counters in each experiment's scope as a sequential run — the
// isolation property that stops concurrent experiments from smearing
// counts into each other's registries.

import (
	"reflect"
	"testing"
)

func TestRunObservedAttachesStats(t *testing.T) {
	m := NewE870()
	root := NewStatsRegistry("run")
	rep, err := RunObserved("figure2", m, true, root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats == nil {
		t.Fatal("observed run left Report.Stats nil")
	}
	cm := rep.Stats.CounterMap()
	if cm["figure2/walker/accesses"] == 0 {
		t.Errorf("figure2 scope has no walker accesses: %v", cm)
	}
	// Uninstrumented runs must not grow a snapshot.
	plain, err := Run("figure2", m, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats != nil {
		t.Error("plain Run attached Stats")
	}
}

// statsByID collects each report's counter map keyed by experiment id.
func statsByID(t *testing.T, reps []*Report) map[string]map[string]uint64 {
	t.Helper()
	out := map[string]map[string]uint64{}
	for _, r := range reps {
		if r.Stats == nil {
			t.Fatalf("%s: observed run left Stats nil", r.ID)
		}
		out[r.ID] = r.Stats.CounterMap()
	}
	return out
}

// TestRunAllObservedParallelSmoke drives the instrumented suite once
// with concurrent workers sharing one Machine. It is the target of the
// CI race job's `go test -race -short -run Observed .` pass: the
// triple-run determinism test below is too slow under the race
// detector, but a single concurrent instrumented pass already exercises
// every scoped-registry write, counter flush and team-instrumentation
// path under contention.
func TestRunAllObservedParallelSmoke(t *testing.T) {
	m := NewE870()
	reps := RunAllObserved(m, true, 8, NewStatsRegistry("run"))
	for _, r := range reps {
		if r.Stats == nil {
			t.Fatalf("%s: observed run left Stats nil", r.ID)
		}
	}
}

func TestObservedCountersDeterministicAndIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite three times")
	}
	m := NewE870()
	seq1 := statsByID(t, RunAllObserved(m, true, 1, NewStatsRegistry("run")))
	seq2 := statsByID(t, RunAllObserved(m, true, 1, NewStatsRegistry("run")))
	par := statsByID(t, RunAllObserved(m, true, 8, NewStatsRegistry("run")))

	// Determinism: two identical sequential runs produce identical
	// counter values, experiment by experiment.
	for id, c1 := range seq1 {
		if !reflect.DeepEqual(c1, seq2[id]) {
			t.Errorf("%s: counters differ between two sequential runs:\n  1: %v\n  2: %v",
				id, c1, seq2[id])
		}
	}
	// Isolation: a concurrent run scopes each experiment's counters
	// exactly as a sequential run does — nothing leaks across
	// concurrently running experiments.
	for id, c1 := range seq1 {
		if !reflect.DeepEqual(c1, par[id]) {
			t.Errorf("%s: counters differ between sequential and parallel runs:\n  seq: %v\n  par: %v",
				id, c1, par[id])
		}
	}
}
