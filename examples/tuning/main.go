// Tuning: the Section III-D software prefetch facilities, demonstrated
// through the simulator — DSCR depth control, stride-N stream detection,
// and DCBT stream declarations — plus the SMT-level guidance of Section
// III-C. This is the walkthrough a performance engineer would follow on
// real POWER8 hardware; here the machine model answers instantly.
package main

import (
	"fmt"

	"repro"
	"repro/internal/arch"
	"repro/internal/machine"
	"repro/internal/prefetch"
	"repro/internal/smt"
	"repro/internal/trace"
)

func main() {
	m := power8.NewE870()

	fmt.Println("== 1. DSCR prefetch depth (Figure 6) ==")
	fmt.Println("sequential scan, per-line latency by depth setting:")
	for dscr := 1; dscr <= 7; dscr++ {
		w := m.NewWalker(machine.WalkerConfig{Prefetch: prefetch.Config{DSCR: dscr}})
		res := w.Run(trace.NewSequential(0, 1<<16), 0)
		fmt.Printf("  DSCR=%d (%2d lines ahead): %5.1f ns\n",
			dscr, prefetch.DepthLines(dscr), res.AvgNs())
	}
	fmt.Println("-> for sequential access, always run the deepest setting.")

	fmt.Println("\n== 2. Stride-N detection (Figure 7) ==")
	for _, on := range []bool{false, true} {
		w := m.NewWalker(machine.WalkerConfig{
			Page:     arch.Page16M,
			Prefetch: prefetch.Config{DSCR: 7, StrideN: on},
		})
		res := w.Run(trace.NewStrided(0, 256, 50000), 0)
		fmt.Printf("  stride-256 stream, detection %-8v %5.1f ns\n", on, res.AvgNs())
	}
	fmt.Println("-> enable stride-N in the DSCR when walking strided data.")

	fmt.Println("\n== 3. DCBT stream declarations (Figure 8) ==")
	for _, hint := range []bool{false, true} {
		blockLines := 8
		g := trace.NewBlockedRandom(0, 1<<14, blockLines, 7)
		w := m.NewWalker(machine.WalkerConfig{})
		var ns float64
		var n int
		for {
			atStart := g.BlockStart()
			addr, ok := g.Next()
			if !ok {
				break
			}
			if hint && atStart {
				w.Hint(addr, blockLines, 1)
			}
			ns += w.Access(addr)
			n++
		}
		fmt.Printf("  1 KiB random blocks, DCBT %-8v %5.1f ns/line\n", hint, ns/float64(n))
	}
	fmt.Println("-> declare short streams explicitly; the hardware detector is too slow for them.")

	fmt.Println("\n== 4. Choosing the SMT level (Figure 5) ==")
	chip := m.Spec.Chip
	for _, threads := range []int{1, 2, 4, 6, 8} {
		k := smt.FMAKernel{FMAs: 12, Threads: threads}
		fmt.Printf("  12-FMA loop at %d threads/core: %5.1f%% of peak (%d VSX registers)\n",
			threads, 100*smt.FractionOfPeak(chip, k), k.RegistersUsed())
	}
	fmt.Println("-> more threads is not always better: past 128 registers the")
	fmt.Println("   two-level register file starts costing throughput.")
}
