// Quickstart: build the E870 machine model, ask it the paper's headline
// questions, and regenerate one table end to end.
package main

import (
	"fmt"

	"repro"
	"repro/internal/memsys"
)

func main() {
	m := power8.NewE870()
	spec := m.Spec

	fmt.Println("== The machine (Table II) ==")
	fmt.Printf("%s: %d cores / %d hardware threads @ %.2f GHz\n",
		spec.Name, spec.TotalCores(), spec.TotalThreads(), spec.Chip.ClockGHz)
	fmt.Printf("peak compute %v, peak memory %v, balance %.2f FLOP/B\n",
		spec.PeakDP(), spec.PeakMemoryBW(), spec.Balance())

	fmt.Println("\n== Ask the model directly ==")
	fmt.Printf("local DRAM latency:        %.0f ns\n", m.DemandLatencyNs(0, 0))
	fmt.Printf("cross-group DRAM latency:  %.0f ns\n", m.DemandLatencyNs(0, 5))
	fmt.Printf("...with prefetching:       %.1f ns\n", m.PrefetchedLatencyNs(0, 5))
	fmt.Printf("STREAM at the optimal 2:1: %v\n", m.Mem.SystemStream(memsys.ReadShare(2, 1)))
	fmt.Printf("random access, SMT8 x 4:   %v\n", m.RandomAccessBandwidth(8, 4))

	fmt.Println("\n== Regenerate Table III ==")
	rep := power8.MustRun("table3", m, false)
	for _, line := range rep.Lines {
		fmt.Println(line)
	}
	fmt.Printf("\nall %d checks against the paper: passed=%v\n", len(rep.Checks), rep.Passed())
}
