// Chemistry: the paper's Hartree-Fock application (Section V-C) —
// a full SCF run from scratch (s-Gaussian integrals, Schwarz screening,
// Fock builds, Jacobi diagonalization), comparing the two algorithms of
// Table VI: HF-Comp (recompute ERIs each iteration) and HF-Mem
// (precompute and store them — the strategy large memory enables).
package main

import (
	"fmt"

	"repro/internal/hf"
	"repro/internal/perfmodel"
)

func main() {
	// A scaled-down 1hsg protein-ligand fragment that runs in seconds.
	spec := hf.TableV()[3].Scaled(120)
	mol := spec.Build()
	fmt.Printf("molecule %s: %d atoms, %d basis functions, %d electrons\n",
		spec.Name, len(mol.Atoms), mol.NumFunctions(), mol.NumElectrons())

	for _, mode := range []hf.Mode{hf.HFComp, hf.HFMem} {
		res, err := hf.Run(mol, hf.Config{Mode: mode})
		if err != nil {
			fmt.Println("SCF failed:", err)
			return
		}
		fmt.Printf("\n%s: E = %.6f Ha in %d iterations (converged=%v)\n",
			mode, res.Energy, res.Iterations, res.Converged)
		c := res.Components
		fmt.Printf("  kinetic %+.3f, e-nuc %+.3f, e-e %+.3f, nuc-nuc %+.3f\n",
			c.Kinetic, c.NuclearAttraction, c.TwoElectron, c.NuclearRepulsion)
		fmt.Printf("  non-screened quartets: %d (stored values %v)\n",
			res.NonScreened, res.StoredERIBytes)
		fmt.Printf("  precompute %v, Fock %v/iter, density %v/iter, total %v\n",
			res.Timings.Precomp, res.FockPerIter(), res.DensityPerIter(), res.Total)
	}

	fmt.Println("\nE870 projection of Table VI (calibrated on alkane-842 only):")
	fmt.Printf("%-14s %10s %10s %9s\n", "molecule", "HF-Comp", "HF-Mem", "speedup")
	for _, row := range perfmodel.ProjectTableVI(0) {
		fmt.Printf("%-14s %9.0fs %9.0fs %8.2fx\n", row.Molecule, row.HFComp, row.Total, row.Speedup)
	}
	fmt.Println("\nthe paper measures 3.0-5.3x — storing the ERIs wins whenever")
	fmt.Println("the machine has the memory to hold them, which is the E870's point.")
}
