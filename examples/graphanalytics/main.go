// Graph analytics: the paper's Section V graph workloads — all-pairs
// Jaccard similarity and the two-scan SpMV for scale-free graphs — run
// for real on the host at reduced scale, then projected to the E870 at
// the paper's scales.
package main

import (
	"fmt"

	"repro"
	"repro/internal/graph"
	"repro/internal/jaccard"
	"repro/internal/perfmodel"
	"repro/internal/spmv"
)

func main() {
	m := power8.NewE870()

	fmt.Println("== All-pairs Jaccard similarity (Section V-A) ==")
	cfg := graph.DefaultRMAT(14, 1)
	cfg.EdgeFactor = 8
	cfg.Undirected = true
	g := graph.RMAT(cfg)
	fmt.Printf("R-MAT scale %d: %d vertices, %d directed edges (avg degree %.1f, max %d)\n",
		cfg.Scale, g.Rows, g.NNZ(), g.AvgDegree(), g.MaxDegree())
	st := jaccard.AllPairs(g, 0, nil)
	fmt.Printf("host run: %.3fs, %d similar pairs\n", st.Elapsed.Seconds(), st.Pairs)
	fmt.Printf("output %v vs input %v — the output dominates, which is the\n",
		st.OutputBytes, st.InputBytes())
	fmt.Println("paper's argument for large-memory SMPs over distributed clusters.")

	topK := jaccard.NewTopK(5)
	jaccard.AllPairs(g, 0, topK.Emit)
	fmt.Println("most similar vertex pairs (near-duplicate detection):")
	for _, p := range topK.Pairs() {
		fmt.Printf("  (%6d, %6d)  J = %.3f\n", p.I, p.J, p.Similarity)
	}

	fmt.Println("\nE870 projection at the paper's scales (Figure 10):")
	jm := perfmodel.DefaultJaccardModel()
	for _, s := range []int{17, 19, 21, 23} {
		p := perfmodel.ProjectJaccard(m, jm, s, 1)
		fmt.Printf("  scale %2d: %8.1fs, footprint %v\n", p.Scale, p.TimeSec, p.Footprint)
	}

	fmt.Println("\n== Two-scan SpMV on scale-free graphs (Section V-B-2) ==")
	spG := graph.RMAT(graph.DefaultRMAT(15, 2))
	ts := spmv.NewTwoScan(spG, 4096)
	rate := spmv.MeasureTwoScan(ts, 0, 3)
	fmt.Printf("host run at scale 15: %v (avg block nnz %.0f)\n", rate, ts.AvgBlockNNZ())

	ranks, iters := spmv.PageRank(spG, 0.85, 1e-10, 100, 0)
	best, bestRank := 0, 0.0
	for v, r := range ranks {
		if r > bestRank {
			best, bestRank = v, r
		}
	}
	fmt.Printf("PageRank (an SpMV consumer the paper names): converged in %d iterations;\n", iters)
	fmt.Printf("top vertex %d holds %.2f%% of the rank mass\n", best, 100*bestRank)

	fmt.Println("\nE870 projection up to the paper's scale 31 (Figure 12):")
	tm := perfmodel.DefaultTwoScanModel()
	for _, s := range []int{20, 24, 28, 31} {
		p := perfmodel.ProjectTwoScan(m, tm, s)
		fmt.Printf("  scale %2d: %6.1f GFLOP/s (avg block nnz %.0f)\n", p.Scale, p.GFLOPs, p.AvgBlockNNZ)
	}
	fmt.Println("the decline mirrors the paper: constant degree + growing matrix")
	fmt.Println("means ever-emptier blocks, defeating the prefetcher.")
}
