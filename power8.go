// Package power8 reproduces "An Early Performance Study of Large-Scale
// POWER8 SMP Systems" (IPDPS 2016) as a library: a calibrated machine
// model of the IBM Power System E870 — caches, TLB, hardware prefetcher,
// SMT cores, X/A-bus SMP fabric and Centaur memory buffers — together
// with the paper's microbenchmarks, roofline analysis and three
// data-intensive applications (all-pairs Jaccard similarity, SpMV on HPC
// matrices and scale-free graphs, and Hartree-Fock), and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	m := power8.NewE870()
//	fmt.Println(m.Mem.SystemStream(2.0 / 3)) // Table III's 2:1 row
//	rep := power8.MustRun("table3", m, false)
//	for _, line := range rep.Lines {
//		fmt.Println(line)
//	}
//
// The deeper layers are importable directly: internal packages expose the
// substrates (internal/cache, internal/fabric, internal/memsys,
// internal/prefetch, ...) while this package re-exports the surfaces a
// downstream user needs: machine construction, the experiment registry,
// and the application kernels.
package power8

import (
	"fmt"
	"runtime"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/parallel"
)

// Machine is the assembled POWER8 SMP model; see internal/machine.
type Machine = machine.Machine

// SystemSpec is a static machine description; see internal/arch.
type SystemSpec = arch.SystemSpec

// Report is an experiment's rendered output and paper-vs-measured checks.
type Report = experiments.Report

// Check is one paper-vs-measured comparison inside a Report.
type Check = experiments.Check

// Experiment is one table/figure reproduction from the registry.
type Experiment = experiments.Experiment

// E870Spec returns the specification of the paper's evaluation system:
// eight 8-core POWER8 chips at 4.35 GHz in two groups (Table II).
func E870Spec() *SystemSpec { return arch.E870() }

// MaxSMPSpec returns the largest POWER8 SMP of Section II-B: 16 sockets,
// 192 cores, 16 TB (6,144 GFLOP/s, 3,686 GB/s).
func MaxSMPSpec() *SystemSpec { return arch.MaxPOWER8SMP() }

// NewE870 builds the calibrated E870 machine model.
func NewE870() *Machine { return machine.New(arch.E870()) }

// NewMachine builds a machine model for any POWER8 system spec using the
// E870-fitted calibration profiles.
func NewMachine(spec *SystemSpec) *Machine { return machine.New(spec) }

// Experiments returns the full registry in the paper's order: tables
// I-VI and figures 1-12.
func Experiments() []Experiment { return experiments.All() }

// Run executes one experiment by id ("table3", "figure7", ...) against
// the machine. Quick mode shrinks working sets and scales for fast runs.
func Run(id string, m *Machine, quick bool) (*Report, error) {
	exp, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("power8: unknown experiment %q", id)
	}
	return exp.Run(&experiments.Context{Machine: m, Quick: quick}), nil
}

// MustRun is Run for known-good ids; it panics on an unknown id.
func MustRun(id string, m *Machine, quick bool) *Report {
	rep, err := Run(id, m, quick)
	if err != nil {
		panic(err)
	}
	return rep
}

// RunAll executes every experiment and returns the reports in the
// paper's order. The experiments are independent, so they run
// concurrently on up to runtime.NumCPU() goroutines; use RunAllParallel
// to pick the worker count explicitly (1 forces a sequential run).
func RunAll(m *Machine, quick bool) []*Report {
	return RunAllParallel(m, quick, runtime.NumCPU())
}

// RunAllParallel executes every experiment on at most `workers`
// goroutines and returns the reports in the paper's order regardless of
// completion order. The Machine is read-only after construction (Spec,
// Net and Mem are immutable models; all per-run mutable state lives in
// the Walker/Sim/kernel instances each experiment builds privately), so
// one machine is safely shared by every worker, and a parallel run
// produces the same reports as a sequential one.
func RunAllParallel(m *Machine, quick bool, workers int) []*Report {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return parallel.Map(workers, experiments.All(), func(_ int, e Experiment) *Report {
		// A fresh Context per worker: the struct itself is shared-nothing
		// even if a future field gains experiment-local mutable state.
		return e.Run(&experiments.Context{Machine: m, Quick: quick})
	})
}
