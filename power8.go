// Package power8 reproduces "An Early Performance Study of Large-Scale
// POWER8 SMP Systems" (IPDPS 2016) as a library: a calibrated machine
// model of the IBM Power System E870 — caches, TLB, hardware prefetcher,
// SMT cores, X/A-bus SMP fabric and Centaur memory buffers — together
// with the paper's microbenchmarks, roofline analysis and three
// data-intensive applications (all-pairs Jaccard similarity, SpMV on HPC
// matrices and scale-free graphs, and Hartree-Fock), and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	m := power8.NewE870()
//	fmt.Println(m.Mem.SystemStream(2.0 / 3)) // Table III's 2:1 row
//	rep := power8.MustRun("table3", m, false)
//	for _, line := range rep.Lines {
//		fmt.Println(line)
//	}
//
// The deeper layers are importable directly: internal packages expose the
// substrates (internal/cache, internal/fabric, internal/memsys,
// internal/prefetch, ...) while this package re-exports the surfaces a
// downstream user needs: machine construction, the experiment registry,
// and the application kernels.
package power8

import (
	"fmt"
	"runtime"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Machine is the assembled POWER8 SMP model; see internal/machine.
type Machine = machine.Machine

// SystemSpec is a static machine description; see internal/arch.
type SystemSpec = arch.SystemSpec

// Report is an experiment's rendered output and paper-vs-measured checks.
type Report = experiments.Report

// Check is one paper-vs-measured comparison inside a Report.
type Check = experiments.Check

// Experiment is one table/figure reproduction from the registry.
type Experiment = experiments.Experiment

// StatsRegistry is the hierarchical metrics registry behind the -stats
// machinery; see internal/obs for the full API (counters, gauges,
// distributions, scoped children, exporters). All methods are no-ops on
// a nil *StatsRegistry, so instrumentation points cost one branch when
// observation is off.
type StatsRegistry = obs.Registry

// StatsSnapshot is a point-in-time copy of a StatsRegistry scope,
// renderable as JSON or a Markdown table; see internal/obs.
type StatsSnapshot = obs.Snapshot

// NewStatsRegistry constructs a named root registry for an observed run.
func NewStatsRegistry(name string) *StatsRegistry { return obs.NewRegistry(name) }

// E870Spec returns the specification of the paper's evaluation system:
// eight 8-core POWER8 chips at 4.35 GHz in two groups (Table II).
func E870Spec() *SystemSpec { return arch.E870() }

// MaxSMPSpec returns the largest POWER8 SMP of Section II-B: 16 sockets,
// 192 cores, 16 TB (6,144 GFLOP/s, 3,686 GB/s).
func MaxSMPSpec() *SystemSpec { return arch.MaxPOWER8SMP() }

// NewE870 builds the calibrated E870 machine model.
func NewE870() *Machine { return machine.New(arch.E870()) }

// NewMachine builds a machine model for any POWER8 system spec using the
// E870-fitted calibration profiles.
func NewMachine(spec *SystemSpec) *Machine { return machine.New(spec) }

// Experiments returns the full registry in the paper's order: tables
// I-VI and figures 1-12.
func Experiments() []Experiment { return experiments.All() }

// Run executes one experiment by id ("table3", "figure7", ...) against
// the machine. Quick mode shrinks working sets and scales for fast runs.
func Run(id string, m *Machine, quick bool) (*Report, error) {
	exp, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("power8: unknown experiment %q", id)
	}
	return exp.Run(&experiments.Context{Machine: m, Quick: quick}), nil
}

// MustRun is Run for known-good ids; it panics on an unknown id.
func MustRun(id string, m *Machine, quick bool) *Report {
	rep, err := Run(id, m, quick)
	if err != nil {
		panic(err)
	}
	return rep
}

// RunAll executes every experiment and returns the reports in the
// paper's order. The experiments are independent, so they run
// concurrently on up to runtime.NumCPU() goroutines; use RunAllParallel
// to pick the worker count explicitly (1 forces a sequential run).
func RunAll(m *Machine, quick bool) []*Report {
	return RunAllParallel(m, quick, runtime.NumCPU())
}

// RunAllParallel executes every experiment on at most `workers`
// goroutines and returns the reports in the paper's order regardless of
// completion order. The Machine is read-only after construction (Spec,
// Net and Mem are immutable models; all per-run mutable state lives in
// the Walker/Sim/kernel instances each experiment builds privately), so
// one machine is safely shared by every worker, and a parallel run
// produces the same reports as a sequential one.
func RunAllParallel(m *Machine, quick bool, workers int) []*Report {
	return RunAllObserved(m, quick, workers, nil)
}

// RunObserved is Run with instrumentation and isolation: the
// experiment's counters land in a child scope of root named after the
// experiment id, the returned report carries that scope's snapshot in
// Report.Stats, and a panicking experiment comes back as a failed
// report instead of crashing the caller. A nil root runs
// uninstrumented but still isolated.
func RunObserved(id string, m *Machine, quick bool, root *StatsRegistry) (*Report, error) {
	exp, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("power8: unknown experiment %q", id)
	}
	return RunSuite([]Experiment{exp}, m, RunOptions{Quick: quick, Workers: 1, Stats: root})[0], nil
}

// RunAllObserved is RunAllParallel with instrumentation. Every
// experiment gets its own child registry keyed by its id, so counters
// from concurrently running experiments land in separate scopes instead
// of smearing into shared ones. Allocation deltas are recorded only on
// sequential runs (workers == 1): runtime.MemStats is process-global and
// cannot be attributed to one experiment while others run. A nil root
// disables instrumentation entirely. Every experiment runs isolated —
// see RunSuite for the full hardening contract (budgets, cancellation,
// retries).
func RunAllObserved(m *Machine, quick bool, workers int, root *StatsRegistry) []*Report {
	return RunSuite(experiments.All(), m, RunOptions{Quick: quick, Workers: workers, Stats: root})
}
