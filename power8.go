// Package power8 reproduces "An Early Performance Study of Large-Scale
// POWER8 SMP Systems" (IPDPS 2016) as a library: a calibrated machine
// model of the IBM Power System E870 — caches, TLB, hardware prefetcher,
// SMT cores, X/A-bus SMP fabric and Centaur memory buffers — together
// with the paper's microbenchmarks, roofline analysis and three
// data-intensive applications (all-pairs Jaccard similarity, SpMV on HPC
// matrices and scale-free graphs, and Hartree-Fock), and a harness that
// regenerates every table and figure of the paper's evaluation.
//
// # Quick start
//
//	m := power8.NewE870()
//	fmt.Println(m.Mem.SystemStream(2.0 / 3)) // Table III's 2:1 row
//	rep := power8.MustRun("table3", m, false)
//	for _, line := range rep.Lines {
//		fmt.Println(line)
//	}
//
// The deeper layers are importable directly: internal packages expose the
// substrates (internal/cache, internal/fabric, internal/memsys,
// internal/prefetch, ...) while this package re-exports the surfaces a
// downstream user needs: machine construction, the experiment registry,
// and the application kernels.
package power8

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// Machine is the assembled POWER8 SMP model; see internal/machine.
type Machine = machine.Machine

// SystemSpec is a static machine description; see internal/arch.
type SystemSpec = arch.SystemSpec

// Report is an experiment's rendered output and paper-vs-measured checks.
type Report = experiments.Report

// Check is one paper-vs-measured comparison inside a Report.
type Check = experiments.Check

// Experiment is one table/figure reproduction from the registry.
type Experiment = experiments.Experiment

// E870Spec returns the specification of the paper's evaluation system:
// eight 8-core POWER8 chips at 4.35 GHz in two groups (Table II).
func E870Spec() *SystemSpec { return arch.E870() }

// MaxSMPSpec returns the largest POWER8 SMP of Section II-B: 16 sockets,
// 192 cores, 16 TB (6,144 GFLOP/s, 3,686 GB/s).
func MaxSMPSpec() *SystemSpec { return arch.MaxPOWER8SMP() }

// NewE870 builds the calibrated E870 machine model.
func NewE870() *Machine { return machine.New(arch.E870()) }

// NewMachine builds a machine model for any POWER8 system spec using the
// E870-fitted calibration profiles.
func NewMachine(spec *SystemSpec) *Machine { return machine.New(spec) }

// Experiments returns the full registry in the paper's order: tables
// I-VI and figures 1-12.
func Experiments() []Experiment { return experiments.All() }

// Run executes one experiment by id ("table3", "figure7", ...) against
// the machine. Quick mode shrinks working sets and scales for fast runs.
func Run(id string, m *Machine, quick bool) (*Report, error) {
	exp, ok := experiments.ByID(id)
	if !ok {
		return nil, fmt.Errorf("power8: unknown experiment %q", id)
	}
	return exp.Run(&experiments.Context{Machine: m, Quick: quick}), nil
}

// MustRun is Run for known-good ids; it panics on an unknown id.
func MustRun(id string, m *Machine, quick bool) *Report {
	rep, err := Run(id, m, quick)
	if err != nil {
		panic(err)
	}
	return rep
}

// RunAll executes every experiment in order and returns the reports.
func RunAll(m *Machine, quick bool) []*Report {
	ctx := &experiments.Context{Machine: m, Quick: quick}
	var out []*Report
	for _, e := range experiments.All() {
		out = append(out, e.Run(ctx))
	}
	return out
}
