package power8

import (
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/fault"
	"repro/internal/memo"
	"repro/internal/parallel"
)

// CacheOptions configures a SuiteCache.
type CacheOptions struct {
	// MaxBytes bounds the in-memory report cache; 0 picks a 64 MiB
	// default, negative means unbounded.
	MaxBytes int64
	// Dir, when non-empty, enables the content-addressed on-disk store:
	// cached reports persist as fingerprint-named files and warm up the
	// next process (p8repro -cachedir). Derived machines stay
	// memory-only — they are live object graphs, not bytes.
	Dir string
}

// SuiteCache memoizes the two hot recompute paths of a suite run:
// whole experiment Reports (keyed by machine fingerprint, experiment
// id, quick mode, fault plan and the kernel-runtime knobs) and
// fault-plan derivation (see fault.Deriver). Both rest on the repo's
// determinism contract: every engine result is a pure function of its
// fingerprinted inputs, so a warm lookup and a recomputation are the
// same bits. One SuiteCache is safe for concurrent use and may be
// shared across RunSuite calls; that sharing is the point.
//
// What is never cached: FAILED reports (panics, watchdog trips,
// cancellations — failure is circumstance, not content), and any
// report from an instrumented run (RunOptions.Stats non-nil), because
// counters describe the execution that actually happened and a replay
// would attribute stale counters to a run that did no work. Derivation
// memoization stays active under instrumentation — a derived Machine
// carries no counters.
//
// Report bytes round-trip through JSON. For the deterministic model
// experiments the cached report is bit-identical to a recomputation;
// for the host-measured kernel experiments (table5, figures 9-12) a
// warm hit returns the first run's measurements — by design: the cache
// key covers everything that determines the modelled result, and
// re-measuring host noise is exactly the cost a warm run skips.
type SuiteCache struct {
	reports *memo.Cache
	deriver *fault.Deriver
}

// NewSuiteCache builds a cache. reg, when non-nil, receives counters
// under "memo/reports" and "memo/derive" (hits, misses, bytes,
// evictions, singleflight waits, disk timings).
func NewSuiteCache(opts CacheOptions, reg *StatsRegistry) (*SuiteCache, error) {
	maxBytes := opts.MaxBytes
	if maxBytes == 0 {
		maxBytes = 64 << 20
	}
	sc := &SuiteCache{
		reports: memo.New("reports", maxBytes, reg),
		deriver: fault.NewDeriver(maxBytes, reg),
	}
	if opts.Dir != "" {
		if err := sc.reports.SetDir(opts.Dir); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// Deriver returns the machine-derivation memoizer (valid on nil: a nil
// deriver derives directly).
func (sc *SuiteCache) Deriver() *fault.Deriver {
	if sc == nil {
		return nil
	}
	return sc.deriver
}

// Reports exposes the underlying report cache (stats and tests).
func (sc *SuiteCache) Reports() *memo.Cache {
	if sc == nil {
		return nil
	}
	return sc.reports
}

// requestKey fingerprints everything that determines a report's
// content. Deliberately absent: the DES shard count (sharded and
// sequential runs are bit-identical by contract — PR 6 — so a result
// computed at any shard count serves every other), the worker count
// (experiments are independent), retry policy and event budget (a
// budget either trips — FAILED, never cached — or changes nothing).
func requestKey(m *Machine, e Experiment, opts RunOptions) canon.Fingerprint {
	h := canon.NewHasher("power8/request/v1")
	h.Fp(canon.Machine(m))
	h.Str(e.ID)
	h.Bool(opts.Quick)
	opts.Faults.AppendCanon(h)
	// The kernel-runtime knobs reach host-measured kernel behaviour
	// (team width and dynamic grain), so runs under different knobs
	// must not satisfy one another.
	h.Int(parallel.Workers(0))
	h.Int(parallel.GrainFactor())
	return h.Sum()
}

// checkReportBytes validates a disk-read cache entry before it is
// trusted: it must be well-formed JSON (a truncated write or a
// corrupted file is not). Decoding proper happens at the use site.
func checkReportBytes(data []byte) error {
	if !json.Valid(data) {
		return fmt.Errorf("power8: cached report is not valid JSON (%d bytes)", len(data))
	}
	return nil
}

// ProbeReport reports whether a completed report for experiment e on
// machine m under opts is already resident in the cache (memory or
// disk). The probe is advisory: it promotes nothing and the answer can
// be stale by the time the caller acts on it — a concurrent run may
// insert or evict the entry at any moment. p8d uses it to annotate
// freshly admitted jobs with a warm/cold hint; the authoritative
// hit/miss attribution is RunOptions.OnReport's fromCache flag, which
// reports what the lookup actually did. Valid on a nil cache (always
// false).
func (sc *SuiteCache) ProbeReport(e Experiment, m *Machine, opts RunOptions) bool {
	if sc == nil {
		return false
	}
	return sc.reports.Peek(requestKey(m, e, opts))
}

// LoadReport fetches an already-computed report for experiment e on
// machine m under opts from the cache (memory or disk) without ever
// running the experiment. The boolean is false when the report is not
// resident — absent, evicted, or failing validation. p8d recovery uses
// LoadReport to re-serve reports for journal-replayed completed jobs;
// a false return there means the report aged out of the cache and the
// client must resubmit. Valid on a nil cache (always false).
func (sc *SuiteCache) LoadReport(e Experiment, m *Machine, opts RunOptions) (*Report, bool) {
	if sc == nil {
		return nil, false
	}
	data, ok := sc.reports.GetBytes(requestKey(m, e, opts), checkReportBytes)
	if !ok {
		return nil, false
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, false
	}
	return &rep, true
}

// lookupOrRun serves one experiment through the report cache:
// memory, then disk, then compute-and-store via the cache's
// singleflight (concurrent identical requests — e.g. two warm services
// racing on the same suite — run the experiment once). A report that
// failed is returned but never stored, and never satisfies a waiting
// duplicate: the duplicate reruns under its own budget, so one
// cancelled run cannot poison the group. Any cache-layer error falls
// back to a direct run — the cache is an accelerator, not a
// dependency. The second return reports whether the cache supplied the
// report (memory, disk, or another caller's in-flight compute) rather
// than this caller running the experiment itself.
func (sc *SuiteCache) lookupOrRun(e Experiment, m *Machine, opts RunOptions, run func() *Report) (*Report, bool) {
	key := requestKey(m, e, opts)
	var computed *Report
	data, _, err := sc.reports.DoBytes(key, checkReportBytes, func() ([]byte, bool, error) {
		rep := run()
		computed = rep
		buf, err := json.Marshal(rep)
		if err != nil {
			return nil, false, err
		}
		return buf, !rep.Failed(), nil
	})
	if computed != nil {
		// This caller ran the experiment itself (cold miss, marshal
		// failure, or a non-storable retry); hand back the live report
		// rather than a decode of its own bytes.
		return computed, false
	}
	if err != nil {
		return run(), false
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return run(), false
	}
	return &rep, true
}
