package power8

import (
	"testing"
)

func TestE870Spec(t *testing.T) {
	s := E870Spec()
	if s.TotalCores() != 64 || s.TotalThreads() != 512 {
		t.Fatalf("E870 = %d cores / %d threads", s.TotalCores(), s.TotalThreads())
	}
	if MaxSMPSpec().TotalCores() != 192 {
		t.Fatal("max SMP wrong")
	}
}

func TestRunKnownExperiment(t *testing.T) {
	m := NewE870()
	rep, err := Run("table3", m, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table3" || len(rep.Lines) == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.Passed() {
		for _, c := range rep.Checks {
			if !c.Pass() {
				t.Errorf("failed: %s", c.String())
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", NewE870(), true); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun did not panic")
		}
	}()
	MustRun("nope", NewE870(), true)
}

func TestExperimentsRegistry(t *testing.T) {
	if got := len(Experiments()); got != 18 {
		t.Errorf("registry size = %d, want 18 (tables I-VI + figures 1-12)", got)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	reports := RunAll(NewE870(), true)
	if len(reports) != 18 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, rep := range reports {
		if !rep.Passed() {
			for _, c := range rep.Checks {
				if !c.Pass() {
					t.Errorf("%s: %s", rep.ID, c.String())
				}
			}
		}
	}
}
