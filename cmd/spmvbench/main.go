// Command spmvbench benchmarks the paper's two SpMV kernels on a matrix:
// either one of the built-in synthetic suite profiles (Figure 11's
// stand-ins) or a user-supplied Matrix Market file — including the real
// University of Florida matrices the paper used, for anyone who has
// them.
//
// Usage:
//
//	spmvbench -profile "Wind Tunnel"          # built-in synthetic matrix
//	spmvbench -mtx pwtk.mtx                   # a real .mtx file
//	spmvbench -mtx graph.mtx -twoscan -block 4096
//	spmvbench -profile "LiveJournal" -sched static -threads 8
//	spmvbench -profile "LiveJournal" -grain 64    # finer dynamic chunks
//	spmvbench -profile "Wind Tunnel" -stats       # team-scheduling counters
//
// -stats instruments the kernel runtime's worker teams and prints their
// counters after the run (dispatches, per-worker chunks and items, the
// dynamic schedule's imbalance distribution); see DESIGN.md
// "Observability" for the taxonomy. -statsaddr additionally serves the
// live registry over HTTP for watching a long run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/spmv"
)

func main() {
	var (
		profile = flag.String("profile", "", "built-in suite profile name (see -list)")
		mtxPath = flag.String("mtx", "", "Matrix Market file to load")
		list    = flag.Bool("list", false, "list built-in profiles")
		twoscan = flag.Bool("twoscan", false, "also run the two-scan graph kernel")
		block   = flag.Int("block", 4096, "two-scan stripe size")
		iters   = flag.Int("iters", 5, "timed repetitions")
		threads = flag.Int("threads", 0, "worker threads (0 = all CPUs)")
		seed    = flag.Uint64("seed", 1, "synthesis seed for -profile")
		sched   = flag.String("sched", "dynamic", "CSR schedule: dynamic (atomic row chunks) or static (nnz-balanced pre-split)")
		grain   = flag.Int("grain", 0, "dynamic chunk size in rows (0 = nnz-aware auto)")
		stats   = flag.Bool("stats", false, "print kernel-runtime scheduling counters after the run")
		addr    = flag.String("statsaddr", "", "serve the live counter registry over HTTP at this address (implies -stats)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *stats || *addr != "" {
		reg = obs.NewRegistry("spmvbench")
		parallel.InstrumentShared(reg)
		if *addr != "" {
			go func() {
				if err := http.ListenAndServe(*addr, reg); err != nil {
					fatal(fmt.Errorf("stats server: %v", err))
				}
			}()
		}
	}

	var opt spmv.Options
	switch *sched {
	case "dynamic":
		opt.Sched = parallel.Dynamic
	case "static":
		opt.Sched = parallel.Static
	default:
		fatal(fmt.Errorf("unknown -sched %q (want dynamic or static)", *sched))
	}
	opt.Grain = *grain

	if *list {
		for _, p := range graph.Suite() {
			fmt.Printf("%-18s %9d rows %12d nnz  (%v)\n", p.Name, p.N, p.NNZ, p.Kind)
		}
		return
	}

	var m *graph.CSR
	var name string
	switch {
	case *mtxPath != "":
		f, err := os.Open(*mtxPath)
		if err != nil {
			fatal(err)
		}
		m, err = graph.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		name = *mtxPath
	case *profile != "":
		found := false
		for _, p := range graph.Suite() {
			if p.Name == *profile {
				m = graph.Generate(p, *seed)
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown profile %q (try -list)", *profile))
		}
		name = *profile
	default:
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("%s: %d x %d, %d nonzeros (%.1f per row), %v\n",
		name, m.Rows, m.Cols, m.NNZ(), m.AvgDegree(), m.Bytes())
	rate := spmv.MeasureCSRWith(m, *threads, *iters, opt)
	fmt.Printf("CSR SpMV:      %v (%v schedule)\n", rate, opt.Sched)
	if *twoscan {
		ts := spmv.NewTwoScan(m, *block)
		rate2 := spmv.MeasureTwoScan(ts, *threads, *iters)
		fmt.Printf("two-scan SpMV: %v (avg block nnz %.0f)\n", rate2, ts.AvgBlockNNZ())
	}
	if reg != nil {
		fmt.Println("\nkernel-runtime counters:")
		obs.WriteMarkdown(os.Stdout, reg.Snapshot())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spmvbench:", err)
	os.Exit(1)
}
