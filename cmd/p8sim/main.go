// Command p8sim answers ad-hoc latency and bandwidth questions against
// the POWER8 E870 machine model.
//
// Usage examples:
//
//	p8sim -latency -from 0 -to 5            # demand + prefetched latency
//	p8sim -stream -reads 2 -writes 1        # Table III-style bandwidth
//	p8sim -random -threads 8 -lists 4       # Figure 4-style bandwidth
//	p8sim -fma -fmas 12 -threads 6          # Figure 5-style throughput
//	p8sim -roofline -oi 0.8                 # attainable GFLOP/s at an OI
//	p8sim -chase -ws 33554432               # simulate a pointer chase
//	p8sim -chase -ws 33554432 -stats        # ...plus the walker's counters
//	p8sim -random -faults worst-day         # ...against a degraded machine
//	p8sim -random -stats -shards 8          # sharded DES cross-check
//
// -stats prints the simulation counters the queried model paths
// produced (the -chase walker's per-level hits and misses, the -random
// DES engine's event and bank figures); see DESIGN.md "Observability".
//
// -shards picks the DES shard count for the -random cross-check: 0
// (default) auto-sizes to the host, 1 forces the sequential merged
// engine, larger divisors of the socket count run parallel shard
// workers. Results are bit-identical at every legal value (see
// DESIGN.md "Sharded DES"); the knob only trades wall time.
//
// -faults derives a RAS-degraded machine variant through internal/fault
// (canned plan name or event grammar) and answers the queries against
// it instead of the healthy E870.
//
// -cache routes that derivation through the memoizing fault.Deriver
// (content-addressed, deduplicated — see DESIGN.md "Result
// memoization"), and -cachedir (implying -cache) points the cache at
// the same on-disk store p8repro uses, so the two tools share one
// directory without conflict. Derived machines are live object graphs
// and stay memory-only; the flags exist here for parity and so scripts
// can pass one cache configuration to both binaries.
//
// Query parameters are validated up front against the machine spec:
// out-of-range values get a one-line message plus the usage text and
// exit status 2 instead of a model panic.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/roofline"
	"repro/internal/smt"
	"repro/internal/trace"
)

func main() {
	var (
		doLatency  = flag.Bool("latency", false, "chip-to-chip memory latency")
		doStream   = flag.Bool("stream", false, "streaming bandwidth at a read:write mix")
		doRandom   = flag.Bool("random", false, "random-access bandwidth")
		doFMA      = flag.Bool("fma", false, "FMA throughput")
		doRoofline = flag.Bool("roofline", false, "roofline bound at an operational intensity")
		doChase    = flag.Bool("chase", false, "simulate a dependent-load pointer chase")

		from     = flag.Int("from", 0, "requesting chip")
		to       = flag.Int("to", 0, "memory home chip")
		reads    = flag.Float64("reads", 2, "read parts of the mix")
		writes   = flag.Float64("writes", 1, "write parts of the mix")
		threads  = flag.Int("threads", 8, "threads per core")
		lists    = flag.Int("lists", 4, "concurrent lists per thread")
		fmas     = flag.Int("fmas", 12, "independent FMAs per loop")
		oi       = flag.Float64("oi", 1.0, "operational intensity (FLOP/byte)")
		ws       = flag.Int64("ws", 32<<20, "chase working set in bytes")
		huge     = flag.Bool("huge", false, "use 16 MiB pages for the chase")
		stats    = flag.Bool("stats", false, "print simulation counters after the queries")
		faults   = flag.String("faults", "", "answer against a degraded machine derived through this fault plan")
		shards   = flag.Int("shards", 0, "DES shard count for the -random cross-check (0 = auto, must divide the socket count)")
		useCache = flag.Bool("cache", false, "memoize the -faults machine derivation")
		cacheDir = flag.String("cachedir", "", "content-addressed cache directory shared with p8repro (implies -cache)")
	)
	flag.Parse()

	spec := power8.E870Spec()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "p8sim:", err)
		flag.Usage()
		os.Exit(2)
	}
	// Pre-validate the query parameters each selected mode will use; the
	// model constructors panic on bad input by contract, so the CLI
	// checks ranges first and reports them gently.
	switch {
	case *doLatency && (*from < 0 || *from >= spec.Topology.Chips):
		fail(fmt.Errorf("-from chip %d out of range [0,%d)", *from, spec.Topology.Chips))
	case *doLatency && (*to < 0 || *to >= spec.Topology.Chips):
		fail(fmt.Errorf("-to chip %d out of range [0,%d)", *to, spec.Topology.Chips))
	case *doStream && (*reads < 0 || *writes < 0 || *reads+*writes == 0):
		fail(fmt.Errorf("-reads/-writes must be non-negative with a positive sum, got %g:%g", *reads, *writes))
	case (*doRandom || *doFMA) && (*threads < 1 || *threads > spec.Chip.ThreadsPerCore):
		fail(fmt.Errorf("-threads %d out of range [1,%d] (SMT%d cores)", *threads, spec.Chip.ThreadsPerCore, spec.Chip.ThreadsPerCore))
	case *doRandom && *lists < 1:
		fail(fmt.Errorf("-lists must be at least 1, got %d", *lists))
	case *doFMA && *fmas < 1:
		fail(fmt.Errorf("-fmas must be at least 1, got %d", *fmas))
	case *doRoofline && *oi <= 0:
		fail(fmt.Errorf("-oi must be positive, got %g", *oi))
	case *doChase && *ws < 128:
		fail(fmt.Errorf("-ws must cover at least one 128-byte line, got %d", *ws))
	case *shards != 0 && !machine.ShardCountValid(spec, *shards):
		fail(fmt.Errorf("-shards %d does not divide the %d-socket topology (use 0 for auto or a divisor of %d)",
			*shards, spec.Topology.Chips, spec.Topology.Chips))
	}

	var reg *obs.Registry
	if *stats {
		reg = obs.NewRegistry("p8sim")
	}

	var cache *power8.SuiteCache
	if *useCache || *cacheDir != "" {
		c, err := power8.NewSuiteCache(power8.CacheOptions{Dir: *cacheDir}, reg)
		if err != nil {
			fail(err)
		}
		cache = c
	}

	m := power8.NewE870()
	if *faults != "" {
		plan, err := fault.Parse(*faults)
		if err == nil {
			err = plan.Validate(spec)
		}
		if err != nil {
			fail(err)
		}
		// A nil deriver (no -cache) derives directly.
		m = cache.Deriver().Derive(plan, spec)
		fmt.Printf("machine: %s\n", m.Spec.Name)
	}
	ran := false

	if *doLatency {
		ran = true
		src, dst := arch.ChipID(*from), arch.ChipID(*to)
		fmt.Printf("chip%d -> chip%d: demand %.0f ns, prefetched %.1f ns\n",
			src, dst, m.DemandLatencyNs(src, dst), m.PrefetchedLatencyNs(src, dst))
		if src != dst {
			fmt.Printf("one-direction %v, bi-direction %v\n",
				m.Net.PairBandwidth(src, dst, false), m.Net.PairBandwidth(src, dst, true))
		}
	}
	if *doStream {
		ran = true
		f := memsys.ReadShare(*reads, *writes)
		fmt.Printf("%.0f:%.0f mix (read share %.3f): %v system, %v per chip\n",
			*reads, *writes, f, m.Mem.SystemStream(f), m.Mem.StreamBandwidth(f, 1))
	}
	if *doRandom {
		ran = true
		fmt.Printf("%d threads/core x %d lists: %v\n",
			*threads, *lists, m.RandomAccessBandwidth(*threads, *lists))
		if reg != nil {
			// The analytic answer above has no events to count; run the
			// DES cross-check so the stats show the queueing internals.
			bw := m.SimulateRandomAccessSharded(*threads, *lists, 200_000, *shards, reg, nil)
			fmt.Printf("DES cross-check: %v\n", bw)
		}
	}
	if *doFMA {
		ran = true
		k := smt.FMAKernel{FMAs: *fmas, Threads: *threads}
		fmt.Printf("%d FMAs x %d threads: %.1f%% of peak (%v/core, %d registers)\n",
			*fmas, *threads, 100*smt.FractionOfPeak(m.Spec.Chip, k),
			smt.CoreGFlops(m.Spec.Chip, k), k.RegistersUsed())
	}
	if *doRoofline {
		ran = true
		main := roofline.ForSystem(m.Spec)
		wo := roofline.WriteOnly(m.Spec)
		bound := "memory"
		if !main.MemoryBound(*oi) {
			bound = "compute"
		}
		fmt.Printf("OI %.3f: %v attainable (%s bound); write-only ceiling %v\n",
			*oi, main.Attainable(*oi), bound, wo.Attainable(*oi))
	}
	if *doChase {
		ran = true
		lines := int(*ws / 128)
		page := arch.Page64K
		if *huge {
			page = arch.Page16M
		}
		w := m.NewWalker(machine.WalkerConfig{Page: page, DisablePrefetch: true, Obs: reg})
		w.Run(trace.NewChase(0, lines, 1, 42), 0)
		res := w.Run(trace.NewChase(0, lines, 1, 42), 2_000_000)
		fmt.Printf("chase over %d bytes (%v pages): %.2f ns/access\n", *ws, page, res.AvgNs())
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if reg != nil {
		if s := reg.Snapshot(); !s.Empty() {
			fmt.Println("\nsimulation counters:")
			obs.WriteMarkdown(os.Stdout, s)
		}
	}
}
