// Command p8repro regenerates the paper's tables and figures.
//
// Usage:
//
//	p8repro                      # run every experiment, print reports
//	p8repro -exp table3          # run one experiment
//	p8repro -quick               # reduced working sets (seconds, not minutes)
//	p8repro -markdown            # emit an EXPERIMENTS.md-style report
//	p8repro -list                # list experiment ids
//
// Exit status is non-zero when any paper-vs-measured check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		expID     = flag.String("exp", "", "run a single experiment by id (e.g. table3, figure7)")
		quick     = flag.Bool("quick", false, "reduced working sets and scales")
		markdown  = flag.Bool("markdown", false, "emit a markdown report (EXPERIMENTS.md format)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		ablations = flag.Bool("ablations", false, "run the design-choice ablation studies instead")
	)
	flag.Parse()

	if *list {
		for _, e := range power8.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *ablations {
		printAblations()
		return
	}

	m := power8.NewE870()
	var reports []*power8.Report
	if *expID != "" {
		rep, err := power8.Run(*expID, m, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		reports = append(reports, rep)
	} else {
		reports = power8.RunAll(m, *quick)
	}

	failed := 0
	for _, rep := range reports {
		if *markdown {
			printMarkdown(rep)
		} else {
			printText(rep)
		}
		if !rep.Passed() {
			failed++
		}
	}
	if !*markdown {
		fmt.Printf("\n%d/%d experiments passed all checks\n", len(reports)-failed, len(reports))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func printText(rep *power8.Report) {
	fmt.Printf("\n=== %s — %s ===\n", rep.ID, rep.Title)
	for _, l := range rep.Lines {
		fmt.Println("  " + l)
	}
	if len(rep.Notes) > 0 {
		fmt.Println("  notes:")
		for _, n := range rep.Notes {
			fmt.Println("    - " + n)
		}
	}
	fmt.Println("  checks:")
	for _, c := range rep.Checks {
		fmt.Println("    " + c.String())
	}
}

func printMarkdown(rep *power8.Report) {
	fmt.Printf("\n## %s — %s\n\n", rep.ID, rep.Title)
	fmt.Println("```")
	for _, l := range rep.Lines {
		fmt.Println(l)
	}
	fmt.Println("```")
	if len(rep.Notes) > 0 {
		for _, n := range rep.Notes {
			fmt.Println("- " + n)
		}
		fmt.Println()
	}
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	for _, c := range rep.Checks {
		status := "pass"
		if !c.Pass() {
			status = "**FAIL**"
		}
		name := strings.ReplaceAll(c.String(), "|", "/")
		fmt.Printf("| `%s` | %s |\n", name, status)
	}
}
