// Command p8repro regenerates the paper's tables and figures.
//
// Usage:
//
//	p8repro                      # run every experiment, print reports
//	p8repro -exp table3          # run one experiment
//	p8repro -quick               # reduced working sets (seconds, not minutes)
//	p8repro -parallel 4          # run up to 4 experiments concurrently
//	p8repro -kernelworkers 8     # worker-team size inside each kernel
//	p8repro -grainfactor 16      # finer dynamic chunks (chunks per worker)
//	p8repro -markdown            # emit an EXPERIMENTS.md-style report
//	p8repro -list                # list experiment ids
//	p8repro -cpuprofile cpu.pb   # write a pprof CPU profile of the run
//	p8repro -stats               # append a counter appendix per experiment
//	p8repro -statsaddr :8123     # also serve live counters over HTTP
//	p8repro -faults worst-day    # degradation suite under a canned fault plan
//	p8repro -faults guard:0:2    # ... or an explicit event-grammar plan
//	p8repro -faultseed 7         # ... or a seeded random plan (reproducible)
//	p8repro -shards 8            # DES simulations on 8 parallel shards
//	p8repro -cache               # memoize reports and derivations in memory
//	p8repro -cachedir .p8cache   # ...and persist reports for warm re-runs
//
// -shards picks the shard count of the discrete-event simulations (the
// figure4 and deg-plan DES cross-checks): 0 (the default) auto-sizes to
// the host, 1 forces the sequential merged engine, and larger divisors
// of the socket count run that many parallel shard workers. Sharded and
// sequential runs are bit-identical by contract (see DESIGN.md "Sharded
// DES"); the flag only trades wall time. A count that does not divide
// the socket topology is rejected up front with exit status 2.
//
// -cache turns on content-addressed result memoization (see DESIGN.md
// "Result memoization"): completed reports and derived fault machines
// are keyed by canonical fingerprints of everything that determines
// their content, so repeated runs inside one process reuse them.
// -cachedir (which implies -cache) additionally persists reports to a
// content-addressed directory, making a second p8repro invocation warm:
// it reruns nothing whose inputs are unchanged. FAILED reports are
// never cached, and -stats bypasses report reuse so counters always
// describe the execution that actually happened.
//
// -faults and -faultseed switch to the degradation suite: bandwidth-vs-
// fault sweeps and a healthy-vs-degraded comparison on a machine derived
// through the fault plan (see internal/fault for the grammar and the
// canned plan names, or -list). The paper suite is not run in that mode:
// a degraded machine fails the paper's healthy-system checks by
// construction.
//
// Experiments run concurrently (one goroutine each, bounded by
// -parallel, defaulting to the CPU count) but reports always print in
// the paper's order with the same content as a sequential run.
//
// With -stats each experiment runs inside its own registry scope (see
// internal/obs and the DESIGN.md "Observability" section) and its report
// ends with the scope's counters; the kernel runtime's shared-team
// counters are process-wide and print once at the end. -statsaddr
// serves the same registry live: GET / for JSON, /?format=markdown for
// the table form.
//
// Exit status is non-zero when any paper-vs-measured check fails.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// main delegates to run so that deferred profile writers execute before
// the process picks its exit status.
func main() { os.Exit(run()) }

func run() int {
	var (
		expID      = flag.String("exp", "", "run a single experiment by id (e.g. table3, figure7)")
		quick      = flag.Bool("quick", false, "reduced working sets and scales")
		markdown   = flag.Bool("markdown", false, "emit a markdown report (EXPERIMENTS.md format)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablation studies instead")
		workers    = flag.Int("parallel", runtime.NumCPU(), "max experiments running concurrently (1 = sequential)")
		kworkers   = flag.Int("kernelworkers", 0, "worker-team size for the host kernels (0 = GOMAXPROCS)")
		grainf     = flag.Int("grainfactor", 0, "dynamic-schedule chunks per worker (0 = default)")
		timing     = flag.Bool("time", false, "report the suite's wall-clock time on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
		stats      = flag.Bool("stats", false, "collect runtime counters and append a counter appendix per experiment")
		statsaddr  = flag.String("statsaddr", "", "serve the live counter registry over HTTP at this address (implies -stats)")
		faults     = flag.String("faults", "", "run the degradation suite under this fault plan (canned name or event grammar)")
		faultseed  = flag.Uint64("faultseed", 0, "run the degradation suite under a random fault plan derived from this seed (0 = off)")
		shards     = flag.Int("shards", 0, "DES shard count for the simulated experiments (0 = auto, must divide the socket count)")
		useCache   = flag.Bool("cache", false, "memoize reports and fault derivations in memory")
		cacheDir   = flag.String("cachedir", "", "persist cached reports to this directory for warm re-runs (implies -cache)")
	)
	flag.Parse()

	// Validate flag combinations up front with a friendly message and the
	// usage text rather than failing mid-run.
	if err := validateFlags(*workers, *kworkers, *grainf, *shards, *faults, *faultseed, *ablations); err != nil {
		fmt.Fprintln(os.Stderr, "p8repro:", err)
		flag.Usage()
		return 2
	}
	faultMode := *faults != "" || *faultseed != 0
	var plan *power8.FaultPlan
	if faultMode {
		var err error
		if plan, err = resolvePlan(*faults, *faultseed); err != nil {
			fmt.Fprintln(os.Stderr, "p8repro:", err)
			fmt.Fprintln(os.Stderr, "p8repro: canned plans:", strings.Join(fault.CannedNames(), ", "))
			return 2
		}
	}

	parallel.SetDefaultWorkers(*kworkers)
	parallel.SetGrainFactor(*grainf)

	var root *power8.StatsRegistry
	if *stats || *statsaddr != "" {
		root = power8.NewStatsRegistry("p8repro")
		parallel.InstrumentShared(root)
		if *statsaddr != "" {
			go func() {
				if err := http.ListenAndServe(*statsaddr, root); err != nil {
					fmt.Fprintln(os.Stderr, "p8repro: stats server:", err)
				}
			}()
		}
	}
	// The cache is built after the registry so its hit/miss counters land
	// under the observed run's root. With -stats, report reuse is
	// bypassed by the harness; the derivation memoizer still works.
	var cache *power8.SuiteCache
	if *useCache || *cacheDir != "" {
		var err error
		if cache, err = power8.NewSuiteCache(power8.CacheOptions{Dir: *cacheDir}, root); err != nil {
			fmt.Fprintln(os.Stderr, "p8repro:", err)
			return 2
		}
	}

	if *list {
		for _, e := range power8.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ndegradation suite (run with -faults or -faultseed):")
		for _, e := range power8.FaultExperiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		fmt.Println("\ncanned fault plans:", strings.Join(fault.CannedNames(), ", "))
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p8repro: ", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p8repro: ", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p8repro: ", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p8repro: ", err)
			}
		}()
	}

	if *ablations {
		printAblations()
		return 0
	}

	m := power8.NewE870()
	start := time.Now()
	var reports []*power8.Report
	switch {
	case faultMode:
		suite := power8.FaultExperiments()
		if *expID != "" {
			if suite = filterSuite(suite, *expID); suite == nil {
				fmt.Fprintf(os.Stderr, "p8repro: unknown degradation experiment %q\n", *expID)
				return 2
			}
		}
		reports = power8.RunSuite(suite, m, power8.RunOptions{
			Quick: *quick, Workers: *workers, Stats: root, Faults: plan, Shards: *shards, Cache: cache,
		})
	case *expID != "":
		suite := filterSuite(power8.Experiments(), *expID)
		if suite == nil {
			fmt.Fprintf(os.Stderr, "p8repro: unknown experiment %q\n", *expID)
			return 2
		}
		reports = power8.RunSuite(suite, m, power8.RunOptions{
			Quick: *quick, Workers: 1, Stats: root, Shards: *shards, Cache: cache,
		})
	default:
		reports = power8.RunSuite(power8.Experiments(), m, power8.RunOptions{
			Quick: *quick, Workers: *workers, Stats: root, Shards: *shards, Cache: cache,
		})
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "p8repro: suite wall-clock %.2fs (parallel=%d)\n",
			time.Since(start).Seconds(), *workers)
	}

	failed := 0
	for _, rep := range reports {
		if *markdown {
			printMarkdown(rep)
		} else {
			printText(rep)
		}
		if !rep.Passed() {
			failed++
		}
	}
	if root != nil {
		printSharedStats(root, *markdown)
	}
	if !*markdown {
		fmt.Printf("\n%d/%d experiments passed all checks\n", len(reports)-failed, len(reports))
	}
	if failed > 0 {
		return 1
	}
	if *statsaddr != "" {
		fmt.Fprintf(os.Stderr, "p8repro: serving counters on %s until interrupted\n", *statsaddr)
		select {}
	}
	return 0
}

// validateFlags rejects nonsensical flag values and combinations before
// any work starts, so the user gets one friendly line plus the usage
// text (exit 2) instead of a mid-run panic.
func validateFlags(workers, kworkers, grainf, shards int, faults string, faultseed uint64, ablations bool) error {
	if workers < 1 {
		return fmt.Errorf("-parallel must be at least 1, got %d", workers)
	}
	if kworkers < 0 {
		return fmt.Errorf("-kernelworkers must be >= 0, got %d", kworkers)
	}
	if grainf < 0 {
		return fmt.Errorf("-grainfactor must be >= 0, got %d", grainf)
	}
	if spec := power8.E870Spec(); shards != 0 && !machine.ShardCountValid(spec, shards) {
		return fmt.Errorf("-shards %d does not divide the %d-socket topology (use 0 for auto or a divisor of %d)",
			shards, spec.Topology.Chips, spec.Topology.Chips)
	}
	if faults != "" && faultseed != 0 {
		return fmt.Errorf("-faults and -faultseed are mutually exclusive; pick one plan source")
	}
	if ablations && (faults != "" || faultseed != 0) {
		return fmt.Errorf("-ablations cannot be combined with -faults/-faultseed")
	}
	return nil
}

// resolvePlan turns the fault flags into a validated plan against the
// E870 spec the suite runs on.
func resolvePlan(faults string, faultseed uint64) (*power8.FaultPlan, error) {
	spec := power8.E870Spec()
	if faultseed != 0 {
		return fault.Random(faultseed, spec, 4), nil
	}
	plan, err := fault.Parse(faults)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(spec); err != nil {
		return nil, err
	}
	return plan, nil
}

// filterSuite narrows a suite to one experiment id; nil means not found.
func filterSuite(suite []power8.Experiment, id string) []power8.Experiment {
	for _, e := range suite {
		if e.ID == id {
			return []power8.Experiment{e}
		}
	}
	return nil
}

func printText(rep *power8.Report) {
	fmt.Printf("\n=== %s — %s ===\n", rep.ID, rep.Title)
	if rep.Failed() {
		fmt.Println("  status: FAILED (isolated by the harness)")
		for _, l := range strings.Split(strings.TrimRight(rep.Err, "\n"), "\n") {
			fmt.Println("    " + l)
		}
		return
	}
	for _, l := range rep.Lines {
		fmt.Println("  " + l)
	}
	if len(rep.Notes) > 0 {
		fmt.Println("  notes:")
		for _, n := range rep.Notes {
			fmt.Println("    - " + n)
		}
	}
	fmt.Println("  checks:")
	for _, c := range rep.Checks {
		fmt.Println("    " + c.String())
	}
	if rep.Stats != nil && !rep.Stats.Empty() {
		fmt.Println("  counters:")
		printSnapshotText(*rep.Stats, "")
	}
}

// printSnapshotText renders a snapshot tree as indented "path value"
// lines (the text-mode counter appendix). The root's own name is elided:
// it repeats the experiment id from the report header.
func printSnapshotText(s power8.StatsSnapshot, prefix string) {
	for _, c := range s.Counters {
		fmt.Printf("    %-44s %12d\n", prefix+c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Printf("    %-44s %12d  (gauge)\n", prefix+g.Name, g.Value)
	}
	for _, d := range s.Distributions {
		fmt.Printf("    %-44s n=%d mean=%.0f p50=%d p99=%d max=%d\n",
			prefix+d.Name, d.Count, d.Mean, d.P50, d.P99, d.Max)
	}
	for _, child := range s.Children {
		printSnapshotText(child, prefix+child.Name+"/")
	}
}

// printSharedStats renders the process-wide scopes of an observed run —
// the kernel runtime's shared worker teams and the result caches, which
// outlive any one experiment and therefore cannot appear in
// per-experiment appendices.
func printSharedStats(root *power8.StatsRegistry, markdown bool) {
	scopes := []string{"parallel", "memo"}
	for _, name := range scopes {
		s := root.Child(name).Snapshot()
		if s.Empty() {
			continue
		}
		if markdown {
			fmt.Printf("\n## %s counters (process-wide)\n\n", name)
			obs.WriteMarkdown(os.Stdout, s)
			continue
		}
		fmt.Printf("\n=== %s counters (process-wide) ===\n", name)
		printSnapshotText(s, name+"/")
	}
}

func printMarkdown(rep *power8.Report) {
	fmt.Printf("\n## %s — %s\n\n", rep.ID, rep.Title)
	if rep.Failed() {
		fmt.Println("**FAILED** — the harness isolated this experiment:")
		fmt.Println()
		fmt.Println("```")
		fmt.Println(strings.TrimRight(rep.Err, "\n"))
		fmt.Println("```")
		return
	}
	fmt.Println("```")
	for _, l := range rep.Lines {
		fmt.Println(l)
	}
	fmt.Println("```")
	if len(rep.Notes) > 0 {
		for _, n := range rep.Notes {
			fmt.Println("- " + n)
		}
		fmt.Println()
	}
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	for _, c := range rep.Checks {
		status := "pass"
		if !c.Pass() {
			status = "**FAIL**"
		}
		name := strings.ReplaceAll(c.String(), "|", "/")
		fmt.Printf("| `%s` | %s |\n", name, status)
	}
	if rep.Stats != nil && !rep.Stats.Empty() {
		fmt.Print("\n<details><summary>Counter appendix</summary>\n\n")
		obs.WriteMarkdown(os.Stdout, *rep.Stats)
		fmt.Println("\n</details>")
	}
}
