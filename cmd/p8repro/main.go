// Command p8repro regenerates the paper's tables and figures.
//
// Usage:
//
//	p8repro                      # run every experiment, print reports
//	p8repro -exp table3          # run one experiment
//	p8repro -quick               # reduced working sets (seconds, not minutes)
//	p8repro -parallel 4          # run up to 4 experiments concurrently
//	p8repro -kernelworkers 8     # worker-team size inside each kernel
//	p8repro -grainfactor 16      # finer dynamic chunks (chunks per worker)
//	p8repro -markdown            # emit an EXPERIMENTS.md-style report
//	p8repro -list                # list experiment ids
//	p8repro -cpuprofile cpu.pb   # write a pprof CPU profile of the run
//
// Experiments run concurrently (one goroutine each, bounded by
// -parallel, defaulting to the CPU count) but reports always print in
// the paper's order with the same content as a sequential run.
//
// Exit status is non-zero when any paper-vs-measured check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/parallel"
)

// main delegates to run so that deferred profile writers execute before
// the process picks its exit status.
func main() { os.Exit(run()) }

func run() int {
	var (
		expID      = flag.String("exp", "", "run a single experiment by id (e.g. table3, figure7)")
		quick      = flag.Bool("quick", false, "reduced working sets and scales")
		markdown   = flag.Bool("markdown", false, "emit a markdown report (EXPERIMENTS.md format)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		ablations  = flag.Bool("ablations", false, "run the design-choice ablation studies instead")
		workers    = flag.Int("parallel", runtime.NumCPU(), "max experiments running concurrently (1 = sequential)")
		kworkers   = flag.Int("kernelworkers", 0, "worker-team size for the host kernels (0 = GOMAXPROCS)")
		grainf     = flag.Int("grainfactor", 0, "dynamic-schedule chunks per worker (0 = default)")
		timing     = flag.Bool("time", false, "report the suite's wall-clock time on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	parallel.SetDefaultWorkers(*kworkers)
	parallel.SetGrainFactor(*grainf)

	if *list {
		for _, e := range power8.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p8repro: ", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p8repro: ", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p8repro: ", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p8repro: ", err)
			}
		}()
	}

	if *ablations {
		printAblations()
		return 0
	}

	m := power8.NewE870()
	start := time.Now()
	var reports []*power8.Report
	if *expID != "" {
		rep, err := power8.Run(*expID, m, *quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		reports = append(reports, rep)
	} else {
		reports = power8.RunAllParallel(m, *quick, *workers)
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "p8repro: suite wall-clock %.2fs (parallel=%d)\n",
			time.Since(start).Seconds(), *workers)
	}

	failed := 0
	for _, rep := range reports {
		if *markdown {
			printMarkdown(rep)
		} else {
			printText(rep)
		}
		if !rep.Passed() {
			failed++
		}
	}
	if !*markdown {
		fmt.Printf("\n%d/%d experiments passed all checks\n", len(reports)-failed, len(reports))
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func printText(rep *power8.Report) {
	fmt.Printf("\n=== %s — %s ===\n", rep.ID, rep.Title)
	for _, l := range rep.Lines {
		fmt.Println("  " + l)
	}
	if len(rep.Notes) > 0 {
		fmt.Println("  notes:")
		for _, n := range rep.Notes {
			fmt.Println("    - " + n)
		}
	}
	fmt.Println("  checks:")
	for _, c := range rep.Checks {
		fmt.Println("    " + c.String())
	}
}

func printMarkdown(rep *power8.Report) {
	fmt.Printf("\n## %s — %s\n\n", rep.ID, rep.Title)
	fmt.Println("```")
	for _, l := range rep.Lines {
		fmt.Println(l)
	}
	fmt.Println("```")
	if len(rep.Notes) > 0 {
		for _, n := range rep.Notes {
			fmt.Println("- " + n)
		}
		fmt.Println()
	}
	fmt.Println("| check | result |")
	fmt.Println("|---|---|")
	for _, c := range rep.Checks {
		status := "pass"
		if !c.Pass() {
			status = "**FAIL**"
		}
		name := strings.ReplaceAll(c.String(), "|", "/")
		fmt.Printf("| `%s` | %s |\n", name, status)
	}
}
