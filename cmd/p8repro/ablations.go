package main

import (
	"fmt"

	"repro/internal/ablation"
	"repro/internal/arch"
	"repro/internal/machine"
)

// printAblations runs the design-choice studies of internal/ablation and
// prints each feature's measured worth.
func printAblations() {
	m := machine.New(arch.E870())

	fmt.Println("=== Ablation studies: what each POWER8 design choice is worth ===")

	v := ablation.VictimL3(m)
	fmt.Printf("\nNUCA victim L3 (Section II-A)\n")
	fmt.Printf("  32 MiB chase: %.1f ns with lateral castout, %.1f ns without (%.2fx)\n",
		v.With, v.Without, v.Factor())

	r := ablation.InterGroupRouting(arch.E870())
	fmt.Printf("\nMulti-route inter-group fabric (Section III-B)\n")
	fmt.Printf("  chip0->chip5: %.1f GB/s multi-route, %.1f GB/s direct-only (%.2fx)\n",
		r.With, r.Without, r.With/r.Without)
	fmt.Println("  without it, inter-group bandwidth would fall below intra-group,")
	fmt.Println("  inverting the paper's counter-intuitive Table IV finding")

	a := ablation.AsymmetricLinks()
	fmt.Printf("\nAsymmetric 2:1 Centaur links (Section II-A)\n")
	fmt.Printf("  at 2:1 traffic: %.0f GB/s vs %.0f symmetric (%.2fx better)\n",
		a.At2to1.With, a.At2to1.Without, a.At2to1.With/a.At2to1.Without)
	fmt.Printf("  at 1:1 traffic: %.0f GB/s vs %.0f symmetric (%.2fx worse)\n",
		a.At1to1.With, a.At1to1.Without, a.At1to1.Without/a.At1to1.With)

	fmt.Printf("\nTwo-level VSX register file (Section III-C, 12 FMAs x 8 threads)\n")
	for _, row := range ablation.RegisterFile() {
		fmt.Printf("  %3.0f architected registers: %5.1f%% of peak\n", row.Without, 100*row.With)
	}

	d := ablation.DCBTVersusFasterDetector(m)
	fmt.Printf("\nDCBT stream declarations vs detector speed (Section III-D, 1 KiB blocks)\n")
	fmt.Printf("  3-access detector: %6.2f GB/s/thread\n", d.NormalDetector.GBps())
	fmt.Printf("  1-access detector: %6.2f GB/s/thread\n", d.FastDetector.GBps())
	fmt.Printf("  DCBT hints:        %6.2f GB/s/thread\n", d.DCBT.GBps())

	fmt.Printf("\nSMP group scaling (extension beyond the paper's 2-group point)\n")
	fmt.Printf("  %7s %6s %14s %14s %14s %12s\n", "groups", "chips", "all-to-all", "X aggregate", "A aggregate", "worst lat")
	for _, row := range ablation.GroupScaling() {
		fmt.Printf("  %7d %6d %10.0f GB/s %10.0f GB/s %10.0f GB/s %9.0f ns\n",
			row.Groups, row.Chips, row.AllToAll.GBps(), row.XAggregate.GBps(),
			row.AAggregate.GBps(), row.WorstLatencyNs)
	}

	h := ablation.MaxSMP()
	fmt.Printf("\nMaximum 192-way SMP projection (Section II-B)\n")
	fmt.Printf("  peak DP %v, 2:1 stream %v, random saturation %v, balance %.2f\n",
		h.PeakDP, h.Stream2to1, h.RandomSat, h.Balance)
}
