// Command rmatgen generates R-MAT graphs (the paper's Jaccard and graph
// SpMV workloads) as edge lists or reports their structural statistics.
//
// Usage:
//
//	rmatgen -scale 20 -ef 16 -out edges.txt     # write "src dst" lines
//	rmatgen -scale 20 -stats                    # degree statistics only
//	rmatgen -scale 20 -out e.txt -runstats      # generator counters on stderr
//
// -stats describes the graph (degree distribution); -runstats describes
// the run — edges generated and written, generation and write wall time
// — using the same registry/exporter machinery as p8repro -stats (see
// DESIGN.md "Observability").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	var (
		scale      = flag.Int("scale", 16, "log2 of the vertex count")
		ef         = flag.Int("ef", 16, "edge factor (edges per vertex)")
		seed       = flag.Uint64("seed", 1, "generator seed")
		out        = flag.String("out", "", "output file (default stdout)")
		stats      = flag.Bool("stats", false, "print degree statistics instead of edges")
		undirected = flag.Bool("undirected", false, "mirror edges (symmetric adjacency)")
		runstats   = flag.Bool("runstats", false, "print generator run counters on stderr at exit")
	)
	flag.Parse()

	var reg *obs.Registry
	if *runstats {
		reg = obs.NewRegistry("rmatgen")
		defer func() {
			fmt.Fprintln(os.Stderr, "\nrun counters:")
			obs.WriteMarkdown(os.Stderr, reg.Snapshot())
		}()
	}

	cfg := graph.DefaultRMAT(*scale, *seed)
	cfg.EdgeFactor = *ef
	cfg.Undirected = *undirected
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *stats {
		deg, err := graph.RMATDegrees(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var max, total int64
		var sumSq float64
		for _, d := range deg {
			total += int64(d)
			if int64(d) > max {
				max = int64(d)
			}
			sumSq += float64(d) * float64(d)
		}
		fmt.Printf("vertices:       %d\n", cfg.Vertices())
		fmt.Printf("edge endpoints: %d\n", total)
		fmt.Printf("max degree:     %d\n", max)
		fmt.Printf("avg degree:     %.2f\n", float64(total)/float64(len(deg)))
		fmt.Printf("sum d^2:        %.4g (Jaccard two-hop operations)\n", sumSq)
		return
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	genStart := time.Now()
	src, dst, err := graph.RMATEdges(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	reg.Distribution("generate_ns").Observe(time.Since(genStart).Nanoseconds())
	reg.Counter("edges_generated").Add(uint64(len(src)))

	writeStart := time.Now()
	var written uint64
	for i := range src {
		fmt.Fprintf(w, "%d %d\n", src[i], dst[i])
		written++
		if cfg.Undirected {
			fmt.Fprintf(w, "%d %d\n", dst[i], src[i])
			written++
		}
	}
	reg.Distribution("write_ns").Observe(time.Since(writeStart).Nanoseconds())
	reg.Counter("edges_written").Add(written)
}
