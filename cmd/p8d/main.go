// Command p8d is the long-running simulation service: the experiment
// harness, the fault layer and the content-addressed result cache
// behind an HTTP/JSON API.
//
// Usage:
//
//	p8d                          # serve on :8084, in-memory cache
//	p8d -addr 127.0.0.1:9000     # bind elsewhere
//	p8d -queue 64 -jobworkers 4  # deeper admission queue, 4 parallel jobs
//	p8d -cachedir /var/p8dcache  # persist reports: warm restarts
//	p8d -cachemb 256             # in-memory report cache budget
//	p8d -nocache                 # recompute everything, always
//	p8d -kernelworkers 8         # worker-team size inside host kernels
//	p8d -grainfactor 16          # finer dynamic kernel chunks
//
// Submit a job, poll it, fetch its results:
//
//	curl -s -X POST localhost:8084/v1/jobs \
//	     -d '{"experiments":["table3"],"quick":true}'
//	curl -s 'localhost:8084/v1/jobs/<id>?wait=30s'
//	curl -s  localhost:8084/v1/jobs/<id>/reports
//
// The full endpoint reference — schemas, error codes, the cache-key
// contract, streaming — is API.md at the repository root. The
// operational design (bounded queue, 429 admission control, drain on
// shutdown) is DESIGN.md "Service architecture".
//
// p8d always instruments itself: GET /v1/stats serves the live
// registry (service admission counters, the kernel runtime's shared
// team counters, the memo cache's hit/miss/eviction counters) as JSON,
// or as a Markdown table with ?format=markdown. Per-job experiment
// counters are opt-in per request ("stats": true) and served under
// /v1/jobs/{id}/stats.
//
// On SIGINT or SIGTERM the daemon drains: admission stops (new submits
// answer 503), every already-admitted job runs to completion, the HTTP
// server finishes in-flight responses, and the process exits 0. A
// second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	power8 "repro"
	"repro/internal/parallel"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", ":8084", "listen address")
		queue    = flag.Int("queue", 16, "admission queue depth (jobs beyond it are rejected with 429)")
		jworkers = flag.Int("jobworkers", 2, "jobs executing concurrently")
		nocache  = flag.Bool("nocache", false, "disable the content-addressed result cache")
		cacheDir = flag.String("cachedir", "", "persist cached reports to this directory (warm restarts)")
		cacheMB  = flag.Int64("cachemb", 64, "in-memory report cache budget in MiB")
		kworkers = flag.Int("kernelworkers", 0, "worker-team size for the host kernels (0 = GOMAXPROCS)")
		grainf   = flag.Int("grainfactor", 0, "dynamic-schedule chunks per worker (0 = default)")
		waitcap  = flag.Duration("waitlimit", 60*time.Second, "upper bound on the ?wait long-poll parameter")
	)
	flag.Parse()

	if err := validateFlags(*queue, *jworkers, *cacheMB, *kworkers, *grainf); err != nil {
		fmt.Fprintln(os.Stderr, "p8d:", err)
		flag.Usage()
		return 2
	}

	parallel.SetDefaultWorkers(*kworkers)
	parallel.SetGrainFactor(*grainf)

	// The service is always observed: the registry is the /v1/stats
	// endpoint, and the shared worker teams and the cache hang their
	// counters under it.
	root := power8.NewStatsRegistry("p8d")
	parallel.InstrumentShared(root)

	var cache *power8.SuiteCache
	if !*nocache {
		var err error
		cache, err = power8.NewSuiteCache(power8.CacheOptions{
			MaxBytes: *cacheMB << 20,
			Dir:      *cacheDir,
		}, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p8d:", err)
			return 2
		}
	}

	svc := service.New(service.Options{
		QueueDepth: *queue,
		Workers:    *jworkers,
		Cache:      cache,
		Stats:      root,
		WaitLimit:  *waitcap,
	})
	svc.Start()

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "p8d: serving on %s (queue %d, %d job workers, cache %s)\n",
		*addr, *queue, *jworkers, cacheMode(*nocache, *cacheDir))

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or serve.
		fmt.Fprintln(os.Stderr, "p8d:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "p8d: %v — draining (admitted jobs run to completion; signal again to abort)\n", sig)
	}

	// Drain: stop admitting and let the workers finish every admitted
	// job, then let the HTTP server finish in-flight responses. A
	// second signal cuts both short.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "p8d: second signal — aborting drain")
		cancel()
	}()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "p8d: drain aborted:", err)
		_ = server.Close()
		return 1
	}
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "p8d: server shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "p8d: drained, exiting")
	return 0
}

// validateFlags rejects nonsensical values up front with one friendly
// line plus the usage text (exit 2), the same contract as p8repro.
func validateFlags(queue, jworkers int, cacheMB int64, kworkers, grainf int) error {
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", queue)
	}
	if jworkers < 1 {
		return fmt.Errorf("-jobworkers must be at least 1, got %d", jworkers)
	}
	if cacheMB < 1 {
		return fmt.Errorf("-cachemb must be at least 1, got %d", cacheMB)
	}
	if kworkers < 0 {
		return fmt.Errorf("-kernelworkers must be >= 0, got %d", kworkers)
	}
	if grainf < 0 {
		return fmt.Errorf("-grainfactor must be >= 0, got %d", grainf)
	}
	return nil
}

// cacheMode renders the cache configuration for the startup banner.
func cacheMode(nocache bool, dir string) string {
	switch {
	case nocache:
		return "off"
	case dir != "":
		return "memory+disk:" + dir
	default:
		return "memory"
	}
}
