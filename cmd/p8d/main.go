// Command p8d is the long-running simulation service: the experiment
// harness, the fault layer and the content-addressed result cache
// behind an HTTP/JSON API.
//
// Usage:
//
//	p8d                          # serve on :8084, in-memory cache
//	p8d -addr 127.0.0.1:9000     # bind elsewhere
//	p8d -queue 64 -jobworkers 4  # deeper admission queue, 4 parallel jobs
//	p8d -cachedir /var/p8dcache  # persist reports: warm restarts
//	p8d -cachemb 256             # in-memory report cache budget
//	p8d -nocache                 # recompute everything, always
//	p8d -kernelworkers 8         # worker-team size inside host kernels
//	p8d -grainfactor 16          # finer dynamic kernel chunks
//	p8d -journal /var/p8djournal # durable jobs: crash recovery on boot
//	p8d -fsync off               # journal without per-record fsync
//
// With -journal, every job lifecycle transition is written ahead to an
// append-only CRC-framed log, and a restarted daemon replays it:
// completed jobs stay listable with their reports served from the
// -cachedir store (pair the two flags), admitted-but-unstarted jobs run
// again, and jobs that were mid-run are retired as "interrupted".
// -fsync always (the default) makes every 202 durable against power
// loss; -fsync off trusts the OS page cache (process-crash-safe only)
// and requires -journal. See API.md "Restart semantics".
//
// Submit a job, poll it, fetch its results:
//
//	curl -s -X POST localhost:8084/v1/jobs \
//	     -d '{"experiments":["table3"],"quick":true}'
//	curl -s 'localhost:8084/v1/jobs/<id>?wait=30s'
//	curl -s  localhost:8084/v1/jobs/<id>/reports
//
// The full endpoint reference — schemas, error codes, the cache-key
// contract, streaming — is API.md at the repository root. The
// operational design (bounded queue, 429 admission control, drain on
// shutdown) is DESIGN.md "Service architecture".
//
// p8d always instruments itself: GET /v1/stats serves the live
// registry (service admission counters, the kernel runtime's shared
// team counters, the memo cache's hit/miss/eviction counters) as JSON,
// or as a Markdown table with ?format=markdown. Per-job experiment
// counters are opt-in per request ("stats": true) and served under
// /v1/jobs/{id}/stats.
//
// On SIGINT or SIGTERM the daemon drains: admission stops (new submits
// answer 503), every already-admitted job runs to completion, the HTTP
// server finishes in-flight responses, and the process exits 0. A
// second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	power8 "repro"
	"repro/internal/journal"
	"repro/internal/parallel"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr     = flag.String("addr", ":8084", "listen address")
		queue    = flag.Int("queue", 16, "admission queue depth (jobs beyond it are rejected with 429)")
		jworkers = flag.Int("jobworkers", 2, "jobs executing concurrently")
		nocache  = flag.Bool("nocache", false, "disable the content-addressed result cache")
		cacheDir = flag.String("cachedir", "", "persist cached reports to this directory (warm restarts)")
		cacheMB  = flag.Int64("cachemb", 64, "in-memory report cache budget in MiB")
		kworkers = flag.Int("kernelworkers", 0, "worker-team size for the host kernels (0 = GOMAXPROCS)")
		grainf   = flag.Int("grainfactor", 0, "dynamic-schedule chunks per worker (0 = default)")
		waitcap  = flag.Duration("waitlimit", 60*time.Second, "upper bound on the ?wait long-poll parameter")
		jdir     = flag.String("journal", "", "write-ahead job journal directory (enables crash recovery)")
		fsyncStr = flag.String("fsync", "always", "journal fsync policy: always | off (off requires -journal)")
	)
	flag.Parse()

	if err := validateFlags(*queue, *jworkers, *cacheMB, *kworkers, *grainf); err != nil {
		fmt.Fprintln(os.Stderr, "p8d:", err)
		flag.Usage()
		return 2
	}
	fsyncSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fsync" {
			fsyncSet = true
		}
	})
	syncPolicy, err := fsyncPolicy(*fsyncStr, fsyncSet, *jdir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p8d:", err)
		flag.Usage()
		return 2
	}

	parallel.SetDefaultWorkers(*kworkers)
	parallel.SetGrainFactor(*grainf)

	// The service is always observed: the registry is the /v1/stats
	// endpoint, and the shared worker teams and the cache hang their
	// counters under it.
	root := power8.NewStatsRegistry("p8d")
	parallel.InstrumentShared(root)

	var cache *power8.SuiteCache
	if !*nocache {
		var err error
		cache, err = power8.NewSuiteCache(power8.CacheOptions{
			MaxBytes: *cacheMB << 20,
			Dir:      *cacheDir,
		}, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p8d:", err)
			return 2
		}
	}

	var jnl *journal.Journal
	var recovery journal.RecoveryInfo
	if *jdir != "" {
		var err error
		jnl, recovery, err = journal.Open(*jdir, journal.Options{Sync: syncPolicy, Stats: root})
		if err != nil {
			fmt.Fprintln(os.Stderr, "p8d: journal:", err)
			return 2
		}
	}

	svc := service.New(service.Options{
		QueueDepth: *queue,
		Workers:    *jworkers,
		Cache:      cache,
		Stats:      root,
		WaitLimit:  *waitcap,
		Journal:    jnl,
	})
	if jnl != nil {
		sum := svc.Recover(recovery.Records)
		fmt.Fprintf(os.Stderr, "p8d: journal %s: replayed %d records from %d segments (%s)\n",
			*jdir, len(recovery.Records), recovery.Segments, sum)
		if recovery.TornTail {
			fmt.Fprintln(os.Stderr, "p8d: journal: torn tail truncated (expected after a crash)")
		}
		if recovery.CorruptStop {
			fmt.Fprintln(os.Stderr, "p8d: journal: WARNING: corruption mid-log; replay stopped at the last trustworthy record")
		}
	}
	svc.Start()

	server := service.NewHTTPServer(*addr, svc.Handler())
	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "p8d: serving on %s (queue %d, %d job workers, cache %s)\n",
		*addr, *queue, *jworkers, cacheMode(*nocache, *cacheDir))

	select {
	case err := <-errc:
		// ListenAndServe only returns on failure to bind or serve.
		fmt.Fprintln(os.Stderr, "p8d:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "p8d: %v — draining (admitted jobs run to completion; signal again to abort)\n", sig)
	}

	// Drain: stop admitting and let the workers finish every admitted
	// job, then let the HTTP server finish in-flight responses. A
	// second signal cuts both short.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "p8d: second signal — aborting drain")
		cancel()
	}()
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "p8d: drain aborted:", err)
		_ = server.Close()
		return 1
	}
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "p8d: server shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "p8d: drained, exiting")
	return 0
}

// validateFlags rejects nonsensical values up front with one friendly
// line plus the usage text (exit 2), the same contract as p8repro.
func validateFlags(queue, jworkers int, cacheMB int64, kworkers, grainf int) error {
	if queue < 1 {
		return fmt.Errorf("-queue must be at least 1, got %d", queue)
	}
	if jworkers < 1 {
		return fmt.Errorf("-jobworkers must be at least 1, got %d", jworkers)
	}
	if cacheMB < 1 {
		return fmt.Errorf("-cachemb must be at least 1, got %d", cacheMB)
	}
	if kworkers < 0 {
		return fmt.Errorf("-kernelworkers must be >= 0, got %d", kworkers)
	}
	if grainf < 0 {
		return fmt.Errorf("-grainfactor must be >= 0, got %d", grainf)
	}
	return nil
}

// fsyncPolicy resolves the -fsync flag. An explicit -fsync without
// -journal is a configuration error (the policy governs nothing), and
// an unknown policy name is too; both exit 2 via the caller.
func fsyncPolicy(value string, explicit bool, journalDir string) (journal.SyncPolicy, error) {
	if explicit && journalDir == "" {
		return 0, fmt.Errorf("-fsync requires -journal (there is no journal to sync)")
	}
	switch value {
	case "always":
		return journal.SyncAlways, nil
	case "off":
		return journal.SyncNever, nil
	}
	return 0, fmt.Errorf("-fsync must be \"always\" or \"off\", got %q", value)
}

// cacheMode renders the cache configuration for the startup banner.
func cacheMode(nocache bool, dir string) string {
	switch {
	case nocache:
		return "off"
	case dir != "":
		return "memory+disk:" + dir
	default:
		return "memory"
	}
}
