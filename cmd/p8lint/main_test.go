package main

import "testing"

// TestRepoIsClean is the suite's meta-test: `p8lint ./...` must exit
// clean on the repository itself. Every contract the analyzers encode
// is load-bearing (determinism of the paper-order reports, the
// race-freedom of RunAllParallel, the walker's allocation budget), so
// a finding here is a real regression, not style noise. Deliberate,
// justified deviations are visible as //p8:allow comments in the tree,
// not as exclusions here.
func TestRepoIsClean(t *testing.T) {
	findings, err := Lint(".", []string{"./..."})
	if err != nil {
		t.Fatalf("p8lint failed to run: %v", err)
	}
	for _, d := range findings {
		t.Errorf("%v", d)
	}
	if n := len(findings); n > 0 {
		t.Fatalf("p8lint ./... reported %d finding(s); fix them or add //p8:allow with a justification", n)
	}
}
