package main

import (
	"path/filepath"
	"testing"
)

// TestRepoIsClean is the suite's meta-test: `p8lint ./...` must exit
// clean on the repository itself. Every contract the analyzers encode
// is load-bearing (determinism of the paper-order reports, the
// race-freedom of RunAllParallel, the walker's allocation budget), so
// a finding here is a real regression, not style noise. Deliberate,
// justified deviations are visible as //p8:allow comments in the tree,
// not as exclusions here.
func TestRepoIsClean(t *testing.T) {
	findings, err := Lint(".", []string{"./..."})
	if err != nil {
		t.Fatalf("p8lint failed to run: %v", err)
	}
	for _, d := range findings {
		t.Errorf("%v", d)
	}
	if n := len(findings); n > 0 {
		t.Fatalf("p8lint ./... reported %d finding(s); fix them or add //p8:allow with a justification", n)
	}
}

// TestSuppressionBudget pins the suppression debt: the itemized
// //p8:allow count must not exceed the checked-in .p8lint-budget.
// Shrinking the count is always fine (then lower the budget); growing
// it requires raising the budget in the same change, so the new
// justification is reviewed next to the number it moves.
func TestSuppressionBudget(t *testing.T) {
	res, root, err := LintDetailed(".", []string{"./..."})
	if err != nil {
		t.Fatalf("p8lint failed to run: %v", err)
	}
	budgetPath := filepath.Join(root, budgetFile)
	budget, ok, err := readBudget(budgetPath)
	if err != nil {
		t.Fatalf("reading %s: %v", budgetPath, err)
	}
	if !ok {
		t.Fatalf("%s is missing; the suppression budget must stay checked in", budgetPath)
	}
	if n := len(res.Allows); n > budget {
		for _, a := range res.Allows {
			t.Logf("%s:%d: %s: %s", a.File, a.Line, a.Analyzer, a.Justification)
		}
		t.Fatalf("%d suppression(s) exceed the budget of %d in %s; remove allows or raise the budget in the same change", n, budget, budgetPath)
	}
	if budget-len(res.Allows) > 5 {
		t.Errorf("budget %d is %d above the actual count %d; ratchet it down in %s", budget, budget-len(res.Allows), len(res.Allows), budgetPath)
	}
}
