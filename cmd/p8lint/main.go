// Command p8lint runs the repo's custom static-analysis suite: the
// analyzers that turn the codebase's prose contracts — obs nil-safety,
// hot-path allocation discipline, simulator determinism, the frozen
// Machine, kernel-runtime usage, and the service layer's concurrency
// rules — into machine-checked rules, including the interprocedural
// passes that chase those contracts through the call graph. See
// DESIGN.md "Static analysis" for the rules and the //p8:allow
// suppression protocol.
//
// Usage:
//
//	p8lint [-list] [-json] [-suppressions] [-budget file] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Findings print as file:line:col: analyzer: message; any finding
// makes the exit status 1, and a load or type error makes it 2.
//
// -json replaces the text output with a machine-readable report: one
// JSON array of records {file, line, col, analyzer, message,
// suppressed, justification} covering surviving findings and
// suppressed ones alike (CI uploads it as the lint artifact). The exit
// status still reflects only unsuppressed findings.
//
// -suppressions prints the suppression-debt report instead of linting
// output: every //p8:allow directive with its justification, plus the
// total against the checked-in budget (-budget, default
// .p8lint-budget at the module root). Exceeding the budget exits 1 —
// growing the waiver list is a reviewed decision, not drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/tools/analyzers"
	"repro/internal/tools/analyzers/analysis"
)

// budgetFile is the default suppression-budget filename, relative to
// the module root.
const budgetFile = ".p8lint-budget"

func main() {
	var (
		list         = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut      = flag.Bool("json", false, "emit findings (and suppressions) as a JSON report")
		suppressions = flag.Bool("suppressions", false, "print the //p8:allow debt report and check it against the budget")
		budgetPath   = flag.String("budget", budgetFile, "suppression budget file, relative to the module root")
	)
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, root, err := LintDetailed(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p8lint:", err)
		os.Exit(2)
	}

	if *suppressions {
		os.Exit(reportSuppressions(res.Allows, filepath.Join(root, *budgetPath)))
	}
	if *jsonOut {
		if err := writeReport(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "p8lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Findings {
			fmt.Println(d)
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "p8lint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

// Lint loads the patterns against the module containing dir and runs
// the full suite, returning the surviving findings.
func Lint(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	res, _, err := LintDetailed(dir, patterns)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// LintDetailed is Lint with the full result — suppressed findings and
// the allow inventory — plus the resolved module root.
func LintDetailed(dir string, patterns []string) (*analysis.Result, string, error) {
	loader, err := analysis.NewModuleLoader(dir)
	if err != nil {
		return nil, "", err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, "", err
	}
	res, err := analysis.RunDetailed(loader.Fset, pkgs, analyzers.All())
	if err != nil {
		return nil, "", err
	}
	return res, loader.ModuleDir, nil
}

// record is one line of the -json report.
type record struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// writeReport renders the machine-readable report: surviving findings
// first, suppressed ones after, both in position order.
func writeReport(out *os.File, res *analysis.Result) error {
	records := make([]record, 0, len(res.Findings)+len(res.Suppressed))
	for _, batch := range [][]analysis.Diagnostic{res.Findings, res.Suppressed} {
		for _, d := range batch {
			records = append(records, record{
				File:          d.Pos.Filename,
				Line:          d.Pos.Line,
				Col:           d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Suppressed:    d.Suppressed,
				Justification: d.Justification,
			})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// reportSuppressions prints the debt report and returns the exit code:
// 1 when the directive count exceeds the checked-in budget, 0
// otherwise (including when no budget file exists — then the report is
// informational).
func reportSuppressions(allows []analysis.Allow, budgetPath string) int {
	for _, a := range allows {
		fmt.Printf("%s:%d: %s: %s\n", a.File, a.Line, a.Analyzer, a.Justification)
	}
	budget, ok, err := readBudget(budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p8lint:", err)
		return 2
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "p8lint: %d suppression(s); no budget file at %s (informational)\n", len(allows), budgetPath)
		return 0
	}
	if len(allows) > budget {
		fmt.Fprintf(os.Stderr, "p8lint: %d suppression(s) exceed the budget of %d in %s — remove a waiver or raise the budget in review\n",
			len(allows), budget, budgetPath)
		return 1
	}
	fmt.Fprintf(os.Stderr, "p8lint: %d suppression(s) within the budget of %d\n", len(allows), budget)
	return 0
}

// readBudget parses the budget file: one integer, comments (#) and
// blank lines ignored. ok is false when the file does not exist.
func readBudget(path string) (budget int, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		n, err := strconv.Atoi(line)
		if err != nil {
			return 0, false, fmt.Errorf("%s: budget must be one integer, got %q", path, line)
		}
		return n, true, nil
	}
	return 0, false, fmt.Errorf("%s: no budget line found", path)
}
