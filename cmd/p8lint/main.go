// Command p8lint runs the repo's custom static-analysis suite: the
// five analyzers that turn the codebase's prose contracts — obs
// nil-safety, hot-path allocation discipline, simulator determinism,
// the frozen Machine, and kernel-runtime usage — into machine-checked
// rules. See DESIGN.md "Static analysis" for the rules and the
// //p8:allow suppression protocol.
//
// Usage:
//
//	p8lint [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Findings print as file:line:col: analyzer: message; any finding
// makes the exit status 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tools/analyzers"
	"repro/internal/tools/analyzers/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := Lint(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "p8lint:", err)
		os.Exit(2)
	}
	for _, d := range findings {
		fmt.Println(d)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "p8lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Lint loads the patterns against the module containing dir and runs
// the full suite, returning the surviving findings.
func Lint(dir string, patterns []string) ([]analysis.Diagnostic, error) {
	loader, err := analysis.NewModuleLoader(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.Run(loader.Fset, pkgs, analyzers.All())
}
