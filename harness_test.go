package power8

// Tests for the hardened harness: panic isolation, the event-budget
// watchdog, cancellation fan-out, deterministic retries, and the
// reproducibility of fault-degraded runs.

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// TestRunSuiteIsolatesFailures is the hardening acceptance check: with
// one of the paper's 18 experiments forced to panic and another forced
// past its event budget, the suite still returns all 18 reports in
// order — the two sabotaged ones FAILED with diagnostics, the other 16
// unaffected.
func TestRunSuiteIsolatesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite")
	}
	suite := Experiments()
	if len(suite) != 18 {
		t.Fatalf("paper registry has %d experiments, want 18", len(suite))
	}
	const panicIdx, hangIdx = 3, 7
	suite[panicIdx].Run = func(*experiments.Context) *experiments.Report {
		panic("injected failure")
	}
	suite[hangIdx].Run = func(ctx *experiments.Context) *experiments.Report {
		for { // a simulation that never drains
			ctx.Budget.Charge(1 << 20)
		}
	}
	root := NewStatsRegistry("test")
	reports := RunSuite(suite, NewE870(), RunOptions{
		Quick:       true,
		Stats:       root,
		EventBudget: 1 << 40, // far above any quick-mode experiment
	})
	if len(reports) != len(suite) {
		t.Fatalf("got %d reports, want %d", len(reports), len(suite))
	}
	for i, rep := range reports {
		if rep.ID != suite[i].ID {
			t.Errorf("report %d is %q, want %q (suite order)", i, rep.ID, suite[i].ID)
		}
		switch i {
		case panicIdx:
			if !rep.Failed() || !strings.Contains(rep.Err, "injected failure") {
				t.Errorf("%s: want recovered panic diagnostic, got %q", rep.ID, rep.Err)
			}
			if !strings.Contains(rep.Err, "goroutine") {
				t.Errorf("%s: panic diagnostic carries no stack: %q", rep.ID, rep.Err)
			}
		case hangIdx:
			if !rep.Failed() || !strings.Contains(rep.Err, "event budget exhausted") {
				t.Errorf("%s: want watchdog trip, got %q", rep.ID, rep.Err)
			}
		default:
			if rep.Failed() {
				t.Errorf("%s: unaffected experiment failed: %s", rep.ID, rep.Err)
			} else if !rep.Passed() {
				t.Errorf("%s: checks regressed under the hardened harness", rep.ID)
			}
		}
	}
	h := root.Child("harness")
	if got := h.Counter("panics_recovered").Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if got := h.Counter("watchdog_trips").Load(); got != 1 {
		t.Errorf("watchdog_trips = %d, want 1", got)
	}
}

// TestRunSuiteWatchdogTrips: a tiny budget stops a hanging experiment
// deterministically, with the spent count in the diagnostic.
func TestRunSuiteWatchdogTrips(t *testing.T) {
	suite := []Experiment{{
		ID: "hang", Title: "never drains",
		Run: func(ctx *experiments.Context) *experiments.Report {
			for {
				ctx.Budget.Charge(1)
			}
		},
	}}
	reports := RunSuite(suite, NewE870(), RunOptions{Workers: 1, EventBudget: 1000})
	rep := reports[0]
	if !rep.Failed() {
		t.Fatal("hanging experiment did not fail")
	}
	if !strings.Contains(rep.Err, "event budget exhausted (1000 of 1000 events)") {
		t.Errorf("diagnostic = %q", rep.Err)
	}
}

// TestRunSuiteWatchdogTripsRealExperiment: the budget threads through
// the real simulation paths (the walker's access loop), not just
// synthetic charge loops — a real experiment under a tiny budget fails
// cleanly instead of running to completion.
func TestRunSuiteWatchdogTripsRealExperiment(t *testing.T) {
	exp, ok := experiments.ByID("figure2")
	if !ok {
		t.Fatal("figure2 not registered")
	}
	reports := RunSuite([]Experiment{exp}, NewE870(), RunOptions{
		Quick: true, Workers: 1, EventBudget: 1000,
	})
	rep := reports[0]
	if !rep.Failed() || !strings.Contains(rep.Err, "event budget exhausted") {
		t.Errorf("figure2 under a 1000-event budget: Err = %q", rep.Err)
	}
}

// TestRunSuiteRetries: a retryable experiment that fails once succeeds
// on the retry; a non-retryable one is never re-run.
func TestRunSuiteRetries(t *testing.T) {
	attempts := 0
	flaky := Experiment{
		ID: "flaky", Title: "fails once", Retryable: true,
		Run: func(*experiments.Context) *experiments.Report {
			attempts++
			if attempts == 1 {
				panic("transient")
			}
			return &experiments.Report{ID: "flaky", Title: "fails once"}
		},
	}
	root := NewStatsRegistry("test")
	reports := RunSuite([]Experiment{flaky}, NewE870(), RunOptions{
		Workers: 1, Retries: 2, RetryBackoff: time.Microsecond, Stats: root,
	})
	if rep := reports[0]; rep.Failed() {
		t.Errorf("flaky experiment failed despite retry: %s", rep.Err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (fail, then succeed)", attempts)
	}
	h := root.Child("harness")
	if got := h.Counter("retries").Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := h.Counter("panics_recovered").Load(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}

	attempts = 0
	stubborn := flaky
	stubborn.Retryable = false
	stubborn.Run = func(*experiments.Context) *experiments.Report {
		attempts++
		panic("deterministic failure")
	}
	reports = RunSuite([]Experiment{stubborn}, NewE870(), RunOptions{Workers: 1, Retries: 2})
	if rep := reports[0]; !rep.Failed() {
		t.Error("non-retryable failure came back as success")
	}
	if attempts != 1 {
		t.Errorf("non-retryable experiment ran %d times, want 1", attempts)
	}
}

// TestRunSuiteCancellation: closing the cancel channel mid-sweep stops
// the running experiment at its next budget poll and turns every
// not-yet-started experiment away, one cancelled report each.
func TestRunSuiteCancellation(t *testing.T) {
	cancel := make(chan struct{})
	hang := func(ctx *experiments.Context) *experiments.Report {
		for {
			ctx.Budget.Charge(1)
		}
	}
	suite := []Experiment{
		{ID: "closer", Title: "cancels the run", Run: func(ctx *experiments.Context) *experiments.Report {
			close(cancel)
			return hang(ctx)
		}},
		{ID: "second", Title: "never starts", Run: hang},
		{ID: "third", Title: "never starts", Run: hang},
	}
	root := NewStatsRegistry("test")
	reports := RunSuite(suite, NewE870(), RunOptions{Workers: 1, Cancel: cancel, Stats: root})
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	for _, rep := range reports {
		if !rep.Failed() || !strings.Contains(rep.Err, "cancelled") {
			t.Errorf("%s: want cancellation, got %q", rep.ID, rep.Err)
		}
	}
	if got := root.Child("harness").Counter("cancellations").Load(); got != 3 {
		t.Errorf("cancellations = %d, want 3", got)
	}
}

// TestFaultSuiteDeterministic: the same fault seed yields bit-identical
// degraded reports, run to run and regardless of worker count.
func TestFaultSuiteDeterministic(t *testing.T) {
	plan := fault.Random(42, E870Spec(), 5)
	if reflect.DeepEqual(plan, fault.Random(7, E870Spec(), 5)) {
		t.Fatal("different seeds produced identical plans")
	}
	if !reflect.DeepEqual(plan, fault.Random(42, E870Spec(), 5)) {
		t.Fatal("same seed produced different plans")
	}
	run := func(workers int) []*Report {
		return RunSuite(FaultExperiments(), NewE870(), RunOptions{
			Quick: true, Workers: workers, Faults: plan,
		})
	}
	a, b := run(2), run(1)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("report counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Failed() || b[i].Failed() {
			t.Fatalf("%s: degraded run failed: %q %q", a[i].ID, a[i].Err, b[i].Err)
		}
		if !reflect.DeepEqual(a[i].Lines, b[i].Lines) {
			t.Errorf("%s: degraded report lines differ between runs", a[i].ID)
		}
		if !reflect.DeepEqual(a[i].Checks, b[i].Checks) {
			t.Errorf("%s: degraded report checks differ between runs", a[i].ID)
		}
		if !a[i].Passed() {
			for _, c := range a[i].Checks {
				if !c.Pass() {
					t.Errorf("%s: %s", a[i].ID, c.String())
				}
			}
		}
	}
}
