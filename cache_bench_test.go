package power8

// Cold-vs-warm benchmarks for the content-addressed result cache.
// "cold" pays one full quick-mode suite per iteration (fresh cache),
// "warm" serves the same 18 experiments from a primed cache, and
// "nocache" is the regression guard: RunSuite with the cache disabled
// must cost what it did before the cache existed (compare against
// BENCH_6). Run with -benchtime=1x for the cold case — each iteration
// is a whole suite:
//
//	go test -bench=BenchmarkSuiteColdVsWarm -benchtime=1x
//
// BenchmarkDeriveMemo isolates the second memoized hot path: fault-plan
// derivation against the full E870 spec.

import (
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
)

func BenchmarkSuiteColdVsWarm(b *testing.B) {
	m := NewE870()
	suite := Experiments()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cache, err := NewSuiteCache(CacheOptions{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			RunSuite(suite, m, RunOptions{Quick: true, Cache: cache})
		}
	})

	b.Run("warm", func(b *testing.B) {
		cache, err := NewSuiteCache(CacheOptions{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		RunSuite(suite, m, RunOptions{Quick: true, Cache: cache}) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reps := RunSuite(suite, m, RunOptions{Quick: true, Cache: cache})
			if len(reps) != len(suite) {
				b.Fatalf("warm run returned %d reports", len(reps))
			}
		}
	})

	b.Run("nocache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RunSuite(suite, m, RunOptions{Quick: true})
		}
	})
}

// BenchmarkDeriveMemo compares raw fault-plan derivation against the
// memoized deriver's hit path and reports the effective hit rate of a
// degradation-suite-shaped access pattern (each of 8 distinct plans
// derived 16 times).
func BenchmarkDeriveMemo(b *testing.B) {
	spec := arch.E870()
	plans := make([]*fault.Plan, 8)
	for i := range plans {
		plans[i] = &fault.Plan{
			Name:   "bench",
			Events: []fault.Event{{Kind: fault.GuardCores, Chip: 0, N: i%4 + 1}},
		}
		if i >= 4 {
			plans[i].Events[0].Kind = fault.LoseChannels
		}
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plans[i%len(plans)].Derive(spec)
		}
	})

	b.Run("memoized", func(b *testing.B) {
		d := fault.NewDeriver(0, nil)
		var derived atomic.Int64
		for _, p := range plans {
			d.Derive(p, spec) // prime: one real derivation per plan
			derived.Add(1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Derive(plans[i%len(plans)], spec)
		}
		b.ReportMetric(float64(b.N)/float64(b.N+int(derived.Load()))*100, "hit%")
	})
}
